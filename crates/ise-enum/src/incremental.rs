//! The incremental polynomial-time enumeration (§5.2, Figure 3 of the paper), with the
//! pruning techniques of §5.3, implemented over the shared [`crate::engine`].
//!
//! The algorithm interleaves three recursive procedures:
//!
//! * `PICK-OUTPUT` chooses the next output vertex among the admissible candidates
//!   (vertices not related by postdominance to an already chosen output);
//! * `PICK-INPUTS` grows the input set for the current output: the Dubrova-style
//!   *completions* (single-vertex dominators of the output in the graph reduced by the
//!   current seed, each of which closes a multiple-vertex dominator) come from a
//!   Lengauer–Tarjan run on the reduced graph, and the seed itself grows over the
//!   output's ancestors;
//! * `CHECK-CUT` validates the cut identified by the chosen inputs and outputs
//!   (Theorems 2/3) and recurses into `PICK-OUTPUT` if more outputs may be added.
//!
//! The cut body `S` is maintained *incrementally* through the engine's `push`/`pop`
//! transactions, as prescribed by §5.2: choosing an output extends `S`, choosing an
//! input retracts the vertices it cuts off, and backtracking replays the undo trail.
//! Earlier revisions instead rebuilt `S` from scratch at every `CHECK-CUT` with the
//! backward closure of [`crate::cone`]; that pipeline survives as
//! [`BodyStrategy::Rebuild`] for benchmarking, and DESIGN.md records the history and
//! the measured gap. The Lengauer–Tarjan runs behind the completions reuse one
//! [`LtWorkspace`], so the hot path performs no per-candidate allocations.

use std::ops::Range;

use ise_dominators::multi::{dominator_completions, dominator_completions_in};
use ise_dominators::{Forward, LtWorkspace};
use ise_graph::NodeId;

use crate::config::{Constraints, PruningConfig};
use crate::context::EnumContext;
use crate::engine::{self, BodyStrategy, EngineOptions, Enumerator, SearchState};
use crate::obs::phase;
use crate::result::Enumeration;

/// Enumerates all valid cuts with the incremental algorithm of Figure 3 and the default
/// pruning configuration.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let _x = b.node(Operation::Shl, &[n]);
/// let ctx = EnumContext::new(b.build()?);
/// let result = incremental_cuts(&ctx, &Constraints::new(2, 2)?, &PruningConfig::all());
/// assert!(result.stats.valid_cuts > 0);
/// # Ok(())
/// # }
/// ```
pub fn incremental_cuts(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
) -> Enumeration {
    incremental_cuts_bounded(ctx, constraints, pruning, None)
}

/// Like [`incremental_cuts`] but stops exploring after `max_search_nodes` recursion
/// steps, reporting the cuts found so far. Useful when sweeping very large blocks in
/// the benchmark harness. `None` means no limit.
pub fn incremental_cuts_bounded(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    max_search_nodes: Option<usize>,
) -> Enumeration {
    incremental_cuts_with(
        ctx,
        constraints,
        pruning,
        max_search_nodes,
        BodyStrategy::Incremental,
    )
}

/// Like [`incremental_cuts_bounded`] with an explicit [`BodyStrategy`], selecting
/// between the incremental body maintenance and the legacy rebuild-per-`CHECK-CUT`
/// pipeline. Both produce the same cuts; the `engine-vs-rebuild` benchmark measures
/// the difference.
pub fn incremental_cuts_with(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    max_search_nodes: Option<usize>,
    strategy: BodyStrategy,
) -> Enumeration {
    incremental_cuts_opts(
        ctx,
        constraints,
        pruning,
        &EngineOptions {
            max_search_nodes,
            strategy,
            ..EngineOptions::default()
        },
    )
}

/// Like [`incremental_cuts_with`] with the full [`EngineOptions`] (budget, body
/// strategy and [`crate::DedupMode`]) — the entry point of the batch drivers, which
/// thread the CLI's `--dedup-mode` through here.
pub fn incremental_cuts_opts(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    options: &EngineOptions,
) -> Enumeration {
    incremental_cuts_obs(ctx, constraints, pruning, options, None)
}

/// [`incremental_cuts_opts`] with an optional [`ise_obs::Recorder`] receiving the
/// engine's per-phase timings and progress counters. Recording never changes the
/// result.
pub fn incremental_cuts_obs(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    options: &EngineOptions,
    rec: Option<&dyn ise_obs::Recorder>,
) -> Enumeration {
    let mut enumerator = IncrementalEnumerator::new(ctx, pruning);
    engine::run_with_observer(&mut enumerator, ctx, constraints, options, rec)
}

/// The Figure 3 search as an [`Enumerator`] over the shared engine.
///
/// Owns only the algorithm-specific pieces: the pruning configuration, the reusable
/// Lengauer–Tarjan workspace behind the dominator completions, and a pool of
/// completion buffers (one per active recursion depth).
pub struct IncrementalEnumerator<'a> {
    ctx: &'a EnumContext,
    pruning: &'a PruningConfig,
    lt: LtWorkspace,
    completion_pool: Vec<Vec<NodeId>>,
    /// When set, the *top-level* `PICK-OUTPUT` (no outputs chosen yet) only considers
    /// `ctx.candidate_outputs()[range]` as the first output; deeper levels are
    /// unrestricted. This is the task decomposition of the `par` module: each
    /// first-output choice roots an independent subtree (see DESIGN.md §1.4).
    root_range: Option<Range<usize>>,
    /// Recursive task splitting (DESIGN.md §1.4): when set, the task suspends at the
    /// next decision boundary once its search-node count reaches the threshold,
    /// recording where child tasks must resume. `None` disables splitting.
    split_threshold: Option<usize>,
    /// A task resuming a root its parent suspended in skips the first root's
    /// top-level decisions below this index — they belong to ancestor tasks and must
    /// produce no side effects here.
    first_root_skip: Option<usize>,
    /// Where the task stopped, if it suspended.
    suspended: Option<SuspendPoint>,
    /// Absolute candidate index of the root the top-level loop is currently in.
    current_root: usize,
}

/// Where a task suspended when its search-node count crossed the split threshold.
///
/// Both variants are recorded at *decision boundaries* only, and only after at least
/// one root (`AtRoot`) or one first-level decision (`InRoot`) completed inside the
/// suspending task — so every suspension strictly shrinks the remaining work, no work
/// is re-done on resume, and a threshold of 1 still terminates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SuspendPoint {
    /// The task stopped before exploring root `next` (absolute candidate index); the
    /// rest of its root range is untouched.
    AtRoot {
        /// Absolute candidate index of the first unexplored root.
        next: usize,
    },
    /// The task stopped inside root `root` before its first-level decision
    /// `next_decision`; the rest of that root and any later roots are untouched.
    InRoot {
        /// Absolute candidate index of the partially explored root.
        root: usize,
        /// First unexplored decision index at the split level of that root.
        next_decision: usize,
    },
}

impl<'a> IncrementalEnumerator<'a> {
    /// Creates the enumerator for one analysis context.
    pub fn new(ctx: &'a EnumContext, pruning: &'a PruningConfig) -> Self {
        IncrementalEnumerator {
            ctx,
            pruning,
            lt: LtWorkspace::new(),
            completion_pool: Vec::new(),
            root_range: None,
            split_threshold: None,
            first_root_skip: None,
            suspended: None,
            current_root: 0,
        }
    }

    /// Like [`IncrementalEnumerator::new`], but restricts the *first* output choice to
    /// the candidates at `range` within [`EnumContext::candidate_outputs`]. Running
    /// one enumerator per range of a partition of the candidate list explores exactly
    /// the serial search, split into independent subtrees.
    ///
    /// # Panics
    ///
    /// Panics (on first use) if `range` is out of bounds for the candidate list.
    pub fn with_root_range(
        ctx: &'a EnumContext,
        pruning: &'a PruningConfig,
        range: Range<usize>,
    ) -> Self {
        let mut enumerator = Self::new(ctx, pruning);
        enumerator.root_range = Some(range);
        enumerator
    }

    /// Arms recursive task splitting: the task suspends at the next decision boundary
    /// after `threshold` search nodes, and — when resuming a root a parent task
    /// suspended in — skips the first root's decisions below `skip` without side
    /// effects. Used by [`crate::par`]; the plain entry points never split.
    pub(crate) fn set_task_split(&mut self, threshold: Option<usize>, skip: Option<usize>) {
        self.split_threshold = threshold;
        self.first_root_skip = skip;
    }

    /// The suspension point recorded by the last run, if the task split.
    pub(crate) fn take_suspension(&mut self) -> Option<SuspendPoint> {
        self.suspended.take()
    }

    /// True once the task has spent its split threshold and should hand the rest of
    /// its work to child tasks. Budget exhaustion wins over splitting: a
    /// budget-truncated task reports what it found and spawns nothing, exactly as
    /// before task splitting existed.
    fn should_split(&self, state: &SearchState<'_>) -> bool {
        match self.split_threshold {
            Some(threshold) => state.stats().search_nodes >= threshold && !state.out_of_budget(),
            None => false,
        }
    }

    /// `PICK-OUTPUT` of Figure 3.
    fn pick_output(
        &mut self,
        state: &mut SearchState<'_>,
        remaining_inputs: usize,
        remaining_outputs: usize,
    ) {
        let prev = state.phase_enter(phase::PICK_OUTPUT);
        self.pick_output_inner(state, remaining_inputs, remaining_outputs);
        state.phase_restore(prev);
    }

    fn pick_output_inner(
        &mut self,
        state: &mut SearchState<'_>,
        remaining_inputs: usize,
        remaining_outputs: usize,
    ) {
        debug_assert!(remaining_outputs > 0);
        let ctx = self.ctx;
        let legacy = state.strategy() == BodyStrategy::Rebuild;
        // Task decomposition: the root restriction applies only to the first output
        // (no outputs chosen yet); subtrees below it consider every candidate.
        let is_top = state.chosen_outputs().is_empty();
        let all = ctx.candidate_outputs();
        let (restricted, base) = match &self.root_range {
            Some(range) if is_top => (&all[range.clone()], range.start),
            _ => (all, 0),
        };
        // Legacy fidelity: the pre-engine implementation cloned the candidate list on
        // every PICK-OUTPUT call (the engine borrows it from the context instead).
        let legacy_candidates;
        let candidates: &[NodeId] = if legacy {
            legacy_candidates = restricted.to_vec();
            &legacy_candidates
        } else {
            restricted
        };
        for (pos, &o) in candidates.iter().enumerate() {
            if is_top {
                // A suspension recorded inside the previous root ends the task; its
                // children own everything from the suspension point on.
                if self.suspended.is_some() {
                    return;
                }
                // Root-boundary split: with at least one root completed here, hand
                // the remaining roots to child tasks instead of serializing them.
                if pos > 0 && self.should_split(state) {
                    self.suspended = Some(SuspendPoint::AtRoot { next: base + pos });
                    return;
                }
                self.current_root = base + pos;
            }
            if state.out_of_budget() {
                return;
            }
            // A task resuming mid-root re-enters the root its parent suspended in;
            // the parent already counted this PICK-OUTPUT step for it.
            if !(is_top && pos == 0 && self.first_root_skip.is_some()) {
                state.stats_mut().search_nodes += 1;
            }
            if state.output_set().contains(o) {
                continue;
            }
            // Admissibility (§5.1): two outputs of a convex cut are never related by
            // postdomination.
            let postdom = ctx.postdominator_tree();
            if state
                .chosen_outputs()
                .iter()
                .any(|&p| postdom.dominates(p, o) || postdom.dominates(o, p))
            {
                continue;
            }
            // Output–output pruning (§5.3): an ancestor of an already chosen output
            // does not have to be chosen explicitly — it will appear as an internal
            // output of the candidate body.
            if self.pruning.output_output
                && state
                    .chosen_outputs()
                    .iter()
                    .any(|&p| ctx.reach().reaches(o, p))
            {
                state.stats_mut().pruned_output_output += 1;
                continue;
            }
            // Connectedness pruning (§5.3): when only connected cuts are wanted, every
            // output after the first must be reachable from an already chosen input.
            if state.constraints().is_connected_only()
                && self.pruning.connectedness
                && !state.chosen_outputs().is_empty()
                && !state
                    .chosen_inputs()
                    .iter()
                    .any(|&i| ctx.reach().reaches(i, o))
            {
                state.stats_mut().pruned_connectedness += 1;
                continue;
            }

            state.push_output(o);
            // Legacy fidelity: the allocating `set_dominates` reallocates its DFS
            // scratch per call; the engine reuses the state's buffers.
            let dphase = state.phase_enter(phase::DOMINATORS);
            let dominated = if legacy {
                ctx.set_dominates(state.input_set(), o)
            } else {
                state.inputs_dominate(o)
            };
            state.phase_restore(dphase);
            if dominated {
                self.check_cut(state, remaining_inputs, remaining_outputs - 1);
            } else if remaining_inputs > 0 {
                self.pick_inputs(state, o, remaining_inputs, remaining_outputs - 1, 0);
            }
            state.pop_output();
        }
    }

    /// `PICK-INPUTS` of Figure 3: completions via Lengauer–Tarjan on the reduced graph,
    /// then seed growth over the output's ancestors.
    ///
    /// `min_seed_index` enforces an increasing-id order on the seed vertices added for
    /// the current output, so that every unordered seed set is explored exactly once
    /// (the completing vertex found by Lengauer–Tarjan is exempt from the ordering, as
    /// in Dubrova's construction, so no dominator set is missed).
    fn pick_inputs(
        &mut self,
        state: &mut SearchState<'_>,
        output: NodeId,
        remaining_inputs: usize,
        remaining_outputs: usize,
        min_seed_index: usize,
    ) {
        let prev = state.phase_enter(phase::PICK_INPUTS);
        self.pick_inputs_inner(
            state,
            output,
            remaining_inputs,
            remaining_outputs,
            min_seed_index,
        );
        state.phase_restore(prev);
    }

    fn pick_inputs_inner(
        &mut self,
        state: &mut SearchState<'_>,
        output: NodeId,
        remaining_inputs: usize,
        remaining_outputs: usize,
        min_seed_index: usize,
    ) {
        debug_assert!(remaining_inputs > 0);
        if state.out_of_budget() {
            return;
        }
        // The split level of task decomposition (DESIGN.md §1.4): the PICK-INPUTS
        // call directly under the first output. Its decisions — the completions
        // first, then the seed candidates — get deterministic indices `0..k+m`; a
        // task may suspend *between* decisions, handing the remaining indices to
        // child tasks, and a task resuming mid-root skips the decision prefix its
        // ancestors own without any side effects.
        let top_decisions = state.chosen_outputs().len() == 1 && state.chosen_inputs().is_empty();
        let skip = if top_decisions {
            self.first_root_skip.take()
        } else {
            None
        };
        let start = skip.unwrap_or(0);
        // The parent that suspended inside this root already counted the entry
        // bookkeeping; a resumed child only recomputes the completions (it needs them
        // to index its decision window) without re-counting them.
        if skip.is_none() {
            state.stats_mut().search_nodes += 1;
            state.stats_mut().dominator_runs += 1;
        }
        let ctx = self.ctx;

        // Completions: vertices w such that I ∪ {w} dominates the output, found as the
        // single-vertex dominators of the output in the graph with I removed. In
        // engine mode the Lengauer–Tarjan workspace and the completion buffer are both
        // reused; in legacy-rebuild mode each run materializes a fresh `DominatorTree`,
        // as the pre-engine implementation did (see DESIGN.md §1.1).
        let mut completions = self.completion_pool.pop().unwrap_or_default();
        let dphase = state.phase_enter(phase::DOMINATORS);
        if state.strategy() == BodyStrategy::Rebuild {
            completions.extend(dominator_completions(
                &Forward(ctx.rooted()),
                state.input_set(),
                output,
                ctx.artificial(),
            ));
        } else {
            dominator_completions_in(
                &mut self.lt,
                &Forward(ctx.rooted()),
                state.input_set(),
                output,
                ctx.artificial(),
                &mut completions,
            );
        }
        state.phase_restore(dphase);
        let k = completions.len();
        for (d, &w) in completions.iter().enumerate() {
            if top_decisions {
                // Decisions below the resume index belong to ancestor tasks.
                if d < start {
                    continue;
                }
                // Decision-boundary split: at least one decision completed here, so
                // the remaining window can move to child tasks.
                if d > start && self.should_split(state) {
                    self.suspended = Some(SuspendPoint::InRoot {
                        root: self.current_root,
                        next_decision: d,
                    });
                    break;
                }
            }
            if state.output_set().contains(w) {
                continue;
            }
            // Output–input pruning (§5.3, lossless clean-path form — see DESIGN.md): a
            // candidate input with no forbidden-free path to the output can never be an
            // input to this output in a valid cut.
            if self.pruning.output_input && !ctx.reach().clean_reaches(w, output) {
                state.stats_mut().pruned_output_input += 1;
                continue;
            }
            state.push_input(w);
            self.check_cut(state, remaining_inputs - 1, remaining_outputs);
            state.pop_input();
        }
        completions.clear();
        self.completion_pool.push(completions);
        if self.suspended.is_some() {
            return;
        }

        if remaining_inputs > 1 {
            // Seed growth: add one more ancestor of the output to the seed set, in
            // increasing id order so that each seed set is visited once. Legacy
            // fidelity: the pre-engine implementation materialized the ancestor list
            // on every call; the engine iterates the precomputed reachability row.
            // At the split level, seed decisions continue the decision indexing after
            // the `k` completions.
            let mut d = k;
            if state.strategy() == BodyStrategy::Rebuild {
                for i in ctx.reach().ancestors(output).to_vec() {
                    let decision = d;
                    d += 1;
                    if top_decisions {
                        if decision < start {
                            continue;
                        }
                        if decision > start && self.should_split(state) {
                            self.suspended = Some(SuspendPoint::InRoot {
                                root: self.current_root,
                                next_decision: decision,
                            });
                            return;
                        }
                    }
                    if !self.try_seed(
                        state,
                        output,
                        i,
                        remaining_inputs,
                        remaining_outputs,
                        min_seed_index,
                    ) {
                        return;
                    }
                }
            } else {
                for i in ctx.reach().ancestors(output).iter() {
                    let decision = d;
                    d += 1;
                    if top_decisions {
                        if decision < start {
                            continue;
                        }
                        if decision > start && self.should_split(state) {
                            self.suspended = Some(SuspendPoint::InRoot {
                                root: self.current_root,
                                next_decision: decision,
                            });
                            return;
                        }
                    }
                    if !self.try_seed(
                        state,
                        output,
                        i,
                        remaining_inputs,
                        remaining_outputs,
                        min_seed_index,
                    ) {
                        return;
                    }
                }
            }
        }
    }

    /// One iteration of the seed-growth loop of `PICK-INPUTS`: applies the §5.3 seed
    /// prunings to candidate `i` and recurses if it survives. Returns `false` when the
    /// search budget is exhausted and the loop must stop.
    fn try_seed(
        &mut self,
        state: &mut SearchState<'_>,
        output: NodeId,
        i: NodeId,
        remaining_inputs: usize,
        remaining_outputs: usize,
        min_seed_index: usize,
    ) -> bool {
        if state.out_of_budget() {
            return false;
        }
        let ctx = self.ctx;
        if i.index() < min_seed_index {
            return true;
        }
        if i == output
            || ctx.artificial().contains(i)
            || state.input_set().contains(i)
            || state.output_set().contains(i)
        {
            return true;
        }
        // Output–input pruning (§5.3, lossless clean-path form).
        if self.pruning.output_input && !ctx.reach().clean_reaches(i, output) {
            state.stats_mut().pruned_output_input += 1;
            return true;
        }
        // Input–input pruning (§5.3): discard seeds in which one input postdominates
        // another.
        let postdom = ctx.postdominator_tree();
        if self.pruning.input_input
            && state
                .chosen_inputs()
                .iter()
                .any(|&v| postdom.dominates(i, v) || postdom.dominates(v, i))
        {
            state.stats_mut().pruned_input_input += 1;
            return true;
        }
        // Dominator–input pruning (§5.3, reformulated losslessly — see DESIGN.md): if
        // every path from the root to the candidate already crosses the current seed,
        // the candidate can never satisfy the technical input condition of §3 in any
        // cut grown from this seed.
        if self.pruning.dominator_input {
            let dphase = state.phase_enter(phase::DOMINATORS);
            let dominated = if state.strategy() == BodyStrategy::Rebuild {
                ctx.set_dominates(state.input_set(), i)
            } else {
                state.inputs_dominate(i)
            };
            state.phase_restore(dphase);
            if dominated {
                state.stats_mut().pruned_dominator_input += 1;
                return true;
            }
        }
        state.push_input(i);
        self.pick_inputs(
            state,
            output,
            remaining_inputs - 1,
            remaining_outputs,
            i.index() + 1,
        );
        state.pop_input();
        true
    }

    /// `CHECK-CUT` of Figure 3: report the candidate identified by the chosen inputs
    /// and outputs, then optionally extend the cut with further outputs. The body
    /// itself is already maintained by the engine; the legacy `O(n)` rebuild only runs
    /// under [`BodyStrategy::Rebuild`].
    fn check_cut(
        &mut self,
        state: &mut SearchState<'_>,
        remaining_inputs: usize,
        remaining_outputs: usize,
    ) {
        if state.out_of_budget() {
            return;
        }
        state.stats_mut().search_nodes += 1;
        state.check_cut(self.pruning.build_s);
        if remaining_outputs > 0 {
            self.pick_output(state, remaining_inputs, remaining_outputs);
        }
    }
}

impl Enumerator for IncrementalEnumerator<'_> {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn search(&mut self, state: &mut SearchState<'_>) {
        let nin = state.constraints().max_inputs();
        let nout = state.constraints().max_outputs();
        self.pick_output(state, nin, nout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::basic_cuts;
    use crate::cut::{Cut, CutKey};
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DfgBuilder, Operation};

    fn keys(result: &Enumeration) -> Vec<CutKey<'_>> {
        let mut keys: Vec<_> = result.cuts.iter().map(Cut::key).collect();
        keys.sort();
        keys
    }

    fn figure1() -> EnumContext {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let n = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[n, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[n, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        EnumContext::new(b.build().unwrap())
    }

    #[test]
    fn matches_exhaustive_on_figure1() {
        let ctx = figure1();
        for (nin, nout) in [(1, 1), (2, 1), (2, 2), (3, 2), (4, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let fast = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
            let oracle = exhaustive_cuts(&ctx, &constraints, true);
            assert_eq!(keys(&fast), keys(&oracle), "Nin={nin}, Nout={nout}");
        }
    }

    #[test]
    fn matches_basic_with_and_without_pruning() {
        let ctx = figure1();
        let constraints = Constraints::new(4, 2).unwrap();
        let reference = basic_cuts(&ctx, &constraints);
        for pruning in [PruningConfig::all(), PruningConfig::none()] {
            let fast = incremental_cuts(&ctx, &constraints, &pruning);
            assert_eq!(keys(&fast), keys(&reference), "pruning {pruning:?}");
        }
    }

    #[test]
    fn both_strategies_match_the_oracle() {
        let ctx = figure1();
        let constraints = Constraints::new(3, 2).unwrap();
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        for strategy in [BodyStrategy::Incremental, BodyStrategy::Rebuild] {
            let run =
                incremental_cuts_with(&ctx, &constraints, &PruningConfig::all(), None, strategy);
            assert_eq!(keys(&run), keys(&oracle), "{strategy:?}");
        }
    }

    #[test]
    fn respects_memory_forbidden_nodes() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let c = b.input("c");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, c]);
        let y = b.node(Operation::Shl, &[x]);
        let _z = b.node(Operation::Xor, &[y, c]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(2, 2).unwrap();
        let fast = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        assert!(fast.cuts.iter().all(|cut| !cut.contains(ld)));
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        assert_eq!(keys(&fast), keys(&oracle));
    }

    #[test]
    fn connected_only_mode_discards_disconnected_cuts() {
        // Two independent chains; a 2-output cut spanning both is valid but not
        // connected.
        let mut b = DfgBuilder::new("two-chains");
        let a1 = b.input("a1");
        let a2 = b.input("a2");
        let m1 = b.node(Operation::Not, &[a1]);
        let m2 = b.node(Operation::Not, &[a2]);
        let ctx = EnumContext::new(b.build().unwrap());
        let base = Constraints::new(2, 2).unwrap();
        let all = incremental_cuts(&ctx, &base, &PruningConfig::all());
        assert!(all.cuts.iter().any(|c| c.contains(m1) && c.contains(m2)));
        let connected = base.connected_only(true);
        let only_connected = incremental_cuts(&ctx, &connected, &PruningConfig::all());
        assert!(only_connected
            .cuts
            .iter()
            .all(|c| !(c.contains(m1) && c.contains(m2))));
        let oracle = exhaustive_cuts(&ctx, &connected, true);
        assert_eq!(keys(&only_connected), keys(&oracle));
    }

    #[test]
    fn search_budget_truncates_the_search() {
        let ctx = figure1();
        let constraints = Constraints::new(4, 2).unwrap();
        let full = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let truncated =
            incremental_cuts_bounded(&ctx, &constraints, &PruningConfig::all(), Some(2));
        assert!(truncated.stats.search_nodes <= full.stats.search_nodes);
        assert!(truncated.cuts.len() <= full.cuts.len());
    }

    #[test]
    fn stats_reflect_pruning_activity() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, a]);
        let y = b.node(Operation::Shl, &[x]);
        let _z = b.node(Operation::Xor, &[y, x]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(3, 2).unwrap();
        let with = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let without = incremental_cuts(&ctx, &constraints, &PruningConfig::none());
        assert_eq!(
            keys(&with),
            keys(&without),
            "pruning must not change the result"
        );
        assert!(with.stats.search_nodes <= without.stats.search_nodes);
        assert!(with.stats.dominator_runs > 0);
    }
}
