//! The incremental polynomial-time enumeration (§5.2, Figure 3 of the paper), with the
//! pruning techniques of §5.3.
//!
//! The algorithm interleaves three recursive procedures:
//!
//! * `PICK-OUTPUT` chooses the next output vertex among the admissible candidates
//!   (vertices not related by postdominance to an already chosen output);
//! * `PICK-INPUTS` grows the input set for the current output: the Dubrova-style
//!   *completions* (single-vertex dominators of the output in the graph reduced by the
//!   current seed, each of which closes a multiple-vertex dominator) come from a
//!   Lengauer–Tarjan run on the reduced graph, and the seed itself grows over the
//!   output's ancestors;
//! * `CHECK-CUT` rebuilds the cut identified by the chosen inputs and outputs
//!   (Theorems 2/3), validates it, and recurses into `PICK-OUTPUT` if more outputs may
//!   be added.
//!
//! One deliberate implementation difference from the paper is documented in DESIGN.md:
//! instead of maintaining the cut body `S` incrementally through `B(V, w)` updates, the
//! body is rebuilt at every `CHECK-CUT` by a backward closure ([`crate::cone`]). The
//! rebuild is `O(n)`, the same bound the paper charges per candidate, and the "pruning
//! while building S" technique maps to aborting the closure as soon as a forbidden
//! vertex enters it.

use std::collections::HashSet;

use ise_dominators::multi::dominator_completions;
use ise_dominators::Forward;
use ise_graph::{DenseNodeSet, NodeId};

use crate::cone::cone;
use crate::config::{Constraints, PruningConfig};
use crate::context::EnumContext;
use crate::cut::Cut;
use crate::result::Enumeration;
use crate::stats::EnumStats;

/// Enumerates all valid cuts with the incremental algorithm of Figure 3 and the default
/// pruning configuration.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let _x = b.node(Operation::Shl, &[n]);
/// let ctx = EnumContext::new(b.build()?);
/// let result = incremental_cuts(&ctx, &Constraints::new(2, 2)?, &PruningConfig::all());
/// assert!(result.stats.valid_cuts > 0);
/// # Ok(())
/// # }
/// ```
pub fn incremental_cuts(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
) -> Enumeration {
    incremental_cuts_bounded(ctx, constraints, pruning, None)
}

/// Like [`incremental_cuts`] but stops exploring after `max_search_nodes` recursion
/// steps, reporting the cuts found so far. Useful when sweeping very large blocks in
/// the benchmark harness. `None` means no limit.
pub fn incremental_cuts_bounded(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    max_search_nodes: Option<usize>,
) -> Enumeration {
    let n = ctx.rooted().num_nodes();
    let mut search = IncrementalSearch {
        ctx,
        constraints,
        pruning,
        inputs: Vec::new(),
        input_set: DenseNodeSet::new(n),
        outputs: Vec::new(),
        output_set: DenseNodeSet::new(n),
        seen: HashSet::new(),
        cuts: Vec::new(),
        stats: EnumStats::new(),
        max_search_nodes,
    };
    search.pick_output(constraints.max_inputs(), constraints.max_outputs());
    Enumeration {
        cuts: search.cuts,
        stats: search.stats,
    }
}

struct IncrementalSearch<'a> {
    ctx: &'a EnumContext,
    constraints: &'a Constraints,
    pruning: &'a PruningConfig,
    inputs: Vec<NodeId>,
    input_set: DenseNodeSet,
    outputs: Vec<NodeId>,
    output_set: DenseNodeSet,
    seen: HashSet<(Vec<NodeId>, Vec<NodeId>)>,
    cuts: Vec<Cut>,
    stats: EnumStats,
    max_search_nodes: Option<usize>,
}

impl IncrementalSearch<'_> {
    fn out_of_budget(&self) -> bool {
        self.max_search_nodes
            .is_some_and(|limit| self.stats.search_nodes >= limit)
    }

    /// `PICK-OUTPUT` of Figure 3.
    fn pick_output(&mut self, remaining_inputs: usize, remaining_outputs: usize) {
        debug_assert!(remaining_outputs > 0);
        let candidates = self.ctx.candidate_outputs().to_vec();
        for o in candidates {
            if self.out_of_budget() {
                return;
            }
            self.stats.search_nodes += 1;
            if self.output_set.contains(o) {
                continue;
            }
            // Admissibility (§5.1): two outputs of a convex cut are never related by
            // postdomination.
            let postdom = self.ctx.postdominator_tree();
            if self
                .outputs
                .iter()
                .any(|&p| postdom.dominates(p, o) || postdom.dominates(o, p))
            {
                continue;
            }
            // Output–output pruning (§5.3): an ancestor of an already chosen output
            // does not have to be chosen explicitly — it will appear as an internal
            // output of the candidate body.
            if self.pruning.output_output
                && self.outputs.iter().any(|&p| self.ctx.reach().reaches(o, p))
            {
                self.stats.pruned_output_output += 1;
                continue;
            }
            // Connectedness pruning (§5.3): when only connected cuts are wanted, every
            // output after the first must be reachable from an already chosen input.
            if self.constraints.is_connected_only()
                && self.pruning.connectedness
                && !self.outputs.is_empty()
                && !self.inputs.iter().any(|&i| self.ctx.reach().reaches(i, o))
            {
                self.stats.pruned_connectedness += 1;
                continue;
            }

            self.outputs.push(o);
            self.output_set.insert(o);
            if self.ctx.set_dominates(&self.input_set, o) {
                self.check_cut(remaining_inputs, remaining_outputs - 1);
            } else if remaining_inputs > 0 {
                self.pick_inputs(o, remaining_inputs, remaining_outputs - 1, 0);
            }
            self.outputs.pop();
            self.output_set.remove(o);
        }
    }

    /// `PICK-INPUTS` of Figure 3: completions via Lengauer–Tarjan on the reduced graph,
    /// then seed growth over the output's ancestors.
    ///
    /// `min_seed_index` enforces an increasing-id order on the seed vertices added for
    /// the current output, so that every unordered seed set is explored exactly once
    /// (the completing vertex found by Lengauer–Tarjan is exempt from the ordering, as
    /// in Dubrova's construction, so no dominator set is missed).
    fn pick_inputs(
        &mut self,
        output: NodeId,
        remaining_inputs: usize,
        remaining_outputs: usize,
        min_seed_index: usize,
    ) {
        debug_assert!(remaining_inputs > 0);
        if self.out_of_budget() {
            return;
        }
        self.stats.search_nodes += 1;

        // Completions: vertices w such that I ∪ {w} dominates the output, found as the
        // single-vertex dominators of the output in the graph with I removed.
        self.stats.dominator_runs += 1;
        let completions = dominator_completions(
            &Forward(self.ctx.rooted()),
            &self.input_set,
            output,
            self.ctx.artificial(),
        );
        for w in completions {
            if self.output_set.contains(w) {
                continue;
            }
            // Output–input pruning (§5.3, lossless clean-path form — see DESIGN.md): a
            // candidate input with no forbidden-free path to the output can never be an
            // input to this output in a valid cut.
            if self.pruning.output_input && !self.ctx.reach().clean_reaches(w, output) {
                self.stats.pruned_output_input += 1;
                continue;
            }
            self.inputs.push(w);
            self.input_set.insert(w);
            self.check_cut(remaining_inputs - 1, remaining_outputs);
            self.inputs.pop();
            self.input_set.remove(w);
        }

        if remaining_inputs > 1 {
            // Seed growth: add one more ancestor of the output to the seed set, in
            // increasing id order so that each seed set is visited once.
            let ancestors = self.ctx.reach().ancestors(output).to_vec();
            for i in ancestors {
                if self.out_of_budget() {
                    return;
                }
                if i.index() < min_seed_index {
                    continue;
                }
                if i == output
                    || self.ctx.artificial().contains(i)
                    || self.input_set.contains(i)
                    || self.output_set.contains(i)
                {
                    continue;
                }
                // Output–input pruning (§5.3, lossless clean-path form).
                if self.pruning.output_input && !self.ctx.reach().clean_reaches(i, output) {
                    self.stats.pruned_output_input += 1;
                    continue;
                }
                // Input–input pruning (§5.3): discard seeds in which one input
                // postdominates another.
                let postdom = self.ctx.postdominator_tree();
                if self.pruning.input_input
                    && self
                        .inputs
                        .iter()
                        .any(|&v| postdom.dominates(i, v) || postdom.dominates(v, i))
                {
                    self.stats.pruned_input_input += 1;
                    continue;
                }
                // Dominator–input pruning (§5.3, reformulated losslessly — see
                // DESIGN.md): if every path from the root to the candidate already
                // crosses the current seed, the candidate can never satisfy the
                // technical input condition of §3 in any cut grown from this seed.
                if self.pruning.dominator_input && self.ctx.set_dominates(&self.input_set, i) {
                    self.stats.pruned_dominator_input += 1;
                    continue;
                }
                self.inputs.push(i);
                self.input_set.insert(i);
                self.pick_inputs(
                    output,
                    remaining_inputs - 1,
                    remaining_outputs,
                    i.index() + 1,
                );
                self.inputs.pop();
                self.input_set.remove(i);
            }
        }
    }

    /// `CHECK-CUT` of Figure 3: rebuild the candidate body, validate it, and optionally
    /// extend the cut with further outputs.
    fn check_cut(&mut self, remaining_inputs: usize, remaining_outputs: usize) {
        if self.out_of_budget() {
            return;
        }
        self.stats.search_nodes += 1;
        match cone(
            self.ctx.rooted(),
            &self.input_set,
            &self.outputs,
            self.pruning.build_s,
        ) {
            Ok(body) => self.report_candidate(body),
            Err(_) => {
                // "Pruning while building S": the body contains a forbidden vertex, so
                // it cannot be reported; adding more outputs may still lead elsewhere.
                self.stats.pruned_build_s += 1;
            }
        }
        if remaining_outputs > 0 {
            self.pick_output(remaining_inputs, remaining_outputs);
        }
    }

    fn report_candidate(&mut self, body: DenseNodeSet) {
        self.stats.candidates_checked += 1;
        let cut = Cut::from_body(self.ctx, body);
        match cut.validate(self.ctx, self.constraints, true) {
            Ok(()) => {
                if self.seen.insert(cut.key()) {
                    self.stats.valid_cuts += 1;
                    self.cuts.push(cut);
                } else {
                    self.stats.rejected_duplicate += 1;
                }
            }
            Err(rejection) => self.stats.record_rejection(rejection),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::basic_cuts;
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DfgBuilder, Operation};

    fn keys(result: &Enumeration) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
        let mut keys: Vec<_> = result.cuts.iter().map(Cut::key).collect();
        keys.sort();
        keys
    }

    fn figure1() -> EnumContext {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let n = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[n, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[n, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        EnumContext::new(b.build().unwrap())
    }

    #[test]
    fn matches_exhaustive_on_figure1() {
        let ctx = figure1();
        for (nin, nout) in [(1, 1), (2, 1), (2, 2), (3, 2), (4, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let fast = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
            let oracle = exhaustive_cuts(&ctx, &constraints, true);
            assert_eq!(keys(&fast), keys(&oracle), "Nin={nin}, Nout={nout}");
        }
    }

    #[test]
    fn matches_basic_with_and_without_pruning() {
        let ctx = figure1();
        let constraints = Constraints::new(4, 2).unwrap();
        let reference = basic_cuts(&ctx, &constraints);
        for pruning in [PruningConfig::all(), PruningConfig::none()] {
            let fast = incremental_cuts(&ctx, &constraints, &pruning);
            assert_eq!(keys(&fast), keys(&reference), "pruning {pruning:?}");
        }
    }

    #[test]
    fn respects_memory_forbidden_nodes() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let c = b.input("c");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, c]);
        let y = b.node(Operation::Shl, &[x]);
        let _z = b.node(Operation::Xor, &[y, c]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(2, 2).unwrap();
        let fast = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        assert!(fast.cuts.iter().all(|cut| !cut.contains(ld)));
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        assert_eq!(keys(&fast), keys(&oracle));
    }

    #[test]
    fn connected_only_mode_discards_disconnected_cuts() {
        // Two independent chains; a 2-output cut spanning both is valid but not
        // connected.
        let mut b = DfgBuilder::new("two-chains");
        let a1 = b.input("a1");
        let a2 = b.input("a2");
        let m1 = b.node(Operation::Not, &[a1]);
        let m2 = b.node(Operation::Not, &[a2]);
        let ctx = EnumContext::new(b.build().unwrap());
        let base = Constraints::new(2, 2).unwrap();
        let all = incremental_cuts(&ctx, &base, &PruningConfig::all());
        assert!(all.cuts.iter().any(|c| c.contains(m1) && c.contains(m2)));
        let connected = base.connected_only(true);
        let only_connected = incremental_cuts(&ctx, &connected, &PruningConfig::all());
        assert!(only_connected
            .cuts
            .iter()
            .all(|c| !(c.contains(m1) && c.contains(m2))));
        let oracle = exhaustive_cuts(&ctx, &connected, true);
        assert_eq!(keys(&only_connected), keys(&oracle));
    }

    #[test]
    fn search_budget_truncates_the_search() {
        let ctx = figure1();
        let constraints = Constraints::new(4, 2).unwrap();
        let full = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let truncated =
            incremental_cuts_bounded(&ctx, &constraints, &PruningConfig::all(), Some(2));
        assert!(truncated.stats.search_nodes <= full.stats.search_nodes);
        assert!(truncated.cuts.len() <= full.cuts.len());
    }

    #[test]
    fn stats_reflect_pruning_activity() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, a]);
        let y = b.node(Operation::Shl, &[x]);
        let _z = b.node(Operation::Xor, &[y, x]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(3, 2).unwrap();
        let with = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let without = incremental_cuts(&ctx, &constraints, &PruningConfig::none());
        assert_eq!(
            keys(&with),
            keys(&without),
            "pruning must not change the result"
        );
        assert!(with.stats.search_nodes <= without.stats.search_nodes);
        assert!(with.stats.dominator_runs > 0);
    }
}
