//! Reconstruction of a cut body from its input and output vertices.
//!
//! Theorems 2 and 3 of the paper show that a (restricted) convex cut is uniquely
//! identified by its input and output sets and can be rebuilt from them in linear time.
//! We implement the reconstruction as a *backward closure*: starting from the chosen
//! outputs, walk predecessor edges of the augmented graph, never crossing a chosen
//! input. The resulting set contains exactly the vertices that reach a chosen output
//! through a path free of chosen inputs — which for a valid (input, output) combination
//! is precisely the paper's `⋃ B(Iⱼ, oⱼ) \ I`.

use ise_graph::{DenseNodeSet, NodeId, RootedDfg};

/// Rebuilds the cut body identified by `inputs` and `outputs` (Theorem 2/3).
///
/// The result contains every vertex (including the outputs themselves) that can reach a
/// member of `outputs` through a predecessor path that does not cross a member of
/// `inputs`. Members of `inputs` are never part of the result.
///
/// When `abort_on_forbidden` is `true` ("pruning while building S", §5.3) the closure
/// stops as soon as a forbidden vertex would be included and reports it in `Err`; the
/// candidate can then be discarded without finishing the reconstruction.
///
/// # Errors
///
/// Returns `Err(node)` with the first forbidden vertex encountered if
/// `abort_on_forbidden` is set; otherwise forbidden vertices (including, possibly, the
/// artificial source) are included in the body and left to the validity check.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::cone;
/// use ise_graph::{DenseNodeSet, DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let x = b.node(Operation::Shl, &[n]);
/// let rooted = RootedDfg::new(b.build()?);
///
/// let inputs = DenseNodeSet::from_nodes(rooted.num_nodes(), [a, c]);
/// let body = cone(&rooted, &inputs, &[x], false).expect("no forbidden nodes");
/// assert_eq!(body.to_vec(), vec![n, x]);
/// # Ok(())
/// # }
/// ```
pub fn cone(
    rooted: &RootedDfg,
    inputs: &DenseNodeSet,
    outputs: &[NodeId],
    abort_on_forbidden: bool,
) -> Result<DenseNodeSet, NodeId> {
    let mut body = rooted.node_set();
    let mut stack: Vec<NodeId> = Vec::new();
    for &o in outputs {
        if inputs.contains(o) {
            continue;
        }
        if abort_on_forbidden && rooted.is_forbidden(o) {
            return Err(o);
        }
        if body.insert(o) {
            stack.push(o);
        }
    }
    while let Some(v) = stack.pop() {
        for &p in rooted.preds(v) {
            if inputs.contains(p) || body.contains(p) {
                continue;
            }
            if abort_on_forbidden && rooted.is_forbidden(p) {
                return Err(p);
            }
            body.insert(p);
            stack.push(p);
        }
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, Operation};

    /// a, c inputs; n = a + c; x = n << 1; y = n - c; ld = load(a); z = ld ^ x
    fn sample() -> (RootedDfg, [NodeId; 7]) {
        let mut b = DfgBuilder::new("cone");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Shl, &[n]);
        let y = b.node(Operation::Sub, &[n, c]);
        let ld = b.node(Operation::Load, &[a]);
        let z = b.node(Operation::Xor, &[ld, x]);
        let rooted = RootedDfg::new(b.build().unwrap());
        (rooted, [a, c, n, x, y, ld, z])
    }

    fn set(rooted: &RootedDfg, nodes: &[NodeId]) -> DenseNodeSet {
        DenseNodeSet::from_nodes(rooted.num_nodes(), nodes.iter().copied())
    }

    #[test]
    fn closure_stops_at_inputs() {
        let (r, [a, c, n, x, _, _, _]) = sample();
        let body = cone(&r, &set(&r, &[a, c]), &[x], false).unwrap();
        assert_eq!(body.to_vec(), vec![n, x]);
    }

    #[test]
    fn closure_with_intermediate_input() {
        let (r, [_, c, n, x, y, _, _]) = sample();
        // With n itself as the input, only the outputs remain in the body.
        let body = cone(&r, &set(&r, &[n, c]), &[x, y], false).unwrap();
        assert_eq!(body.to_vec(), vec![x, y]);
    }

    #[test]
    fn missing_inputs_pull_in_ancestors() {
        let (r, [a, c, n, x, _, _, _]) = sample();
        // Without any declared inputs the closure keeps going to the Iext vertices and
        // the artificial source; validation would later reject this body.
        let body = cone(&r, &r.node_set(), &[x], false).unwrap();
        assert!(body.contains(a));
        assert!(body.contains(c));
        assert!(body.contains(n));
        assert!(body.contains(r.source()));
    }

    #[test]
    fn abort_on_forbidden_reports_the_culprit() {
        let (r, [a, _, _, x, _, ld, z]) = sample();
        let err = cone(&r, &set(&r, &[a, x]), &[z], true).unwrap_err();
        assert_eq!(err, ld, "the load is the first forbidden vertex pulled in");
        // Without the abort flag the body simply contains the forbidden load.
        let body = cone(&r, &set(&r, &[a, x]), &[z], false).unwrap();
        assert!(body.contains(ld));
    }

    #[test]
    fn outputs_inside_inputs_are_ignored() {
        let (r, [a, c, n, _, _, _, _]) = sample();
        let body = cone(&r, &set(&r, &[a, c, n]), &[n], false).unwrap();
        assert!(body.is_empty());
    }

    #[test]
    fn forbidden_output_aborts_immediately() {
        let (r, [a, _, _, _, _, ld, _]) = sample();
        let err = cone(&r, &set(&r, &[a]), &[ld], true).unwrap_err();
        assert_eq!(err, ld);
    }
}
