//! Shared precomputed analysis context for the enumeration algorithms.

use ise_dominators::{dominators, postdominators, DominatorTree, Forward};
use ise_graph::{DenseNodeSet, Dfg, NodeId, Reachability, RootedDfg};

/// Precomputed analyses shared by every enumeration algorithm (§5.4 of the paper):
/// the augmented graph, pairwise reachability with forbidden-path information, the
/// dominator and postdominator trees, and operation depths.
///
/// Building the context costs `O(n·e/64 + e log n)` and is done once per basic block;
/// all algorithms (`basic`, `incremental`, `baseline`, `exhaustive`) then borrow it.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::EnumContext;
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let ctx = EnumContext::new(b.build()?);
/// assert_eq!(ctx.rooted().original_len(), 2);
/// assert!(ctx.candidate_outputs().contains(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EnumContext {
    rooted: RootedDfg,
    reach: Reachability,
    dom: DominatorTree,
    postdom: DominatorTree,
    /// Vertices that may never be members of a dominator seed or input set: the
    /// artificial source and sink.
    artificial: DenseNodeSet,
    /// Non-forbidden original vertices, i.e. every vertex that could be part of a cut
    /// and therefore a candidate output.
    candidate_outputs: Vec<NodeId>,
    /// Longest-path depth of every vertex from the roots of the original graph.
    depth: Vec<u32>,
}

impl EnumContext {
    /// Builds the context for a basic block.
    pub fn new(dfg: Dfg) -> Self {
        Self::from_rooted(RootedDfg::new(dfg))
    }

    /// Builds the context from an already augmented graph.
    pub fn from_rooted(rooted: RootedDfg) -> Self {
        let reach = Reachability::compute(&rooted);
        let dom = dominators(&Forward(&rooted));
        let postdom = postdominators(&rooted);

        let mut artificial = rooted.node_set();
        artificial.insert(rooted.source());
        artificial.insert(rooted.sink());

        let candidate_outputs: Vec<NodeId> = rooted
            .original_node_ids()
            .filter(|&v| !rooted.is_forbidden(v))
            .collect();

        // The original graph's CSR adjacency feeds the depth computation directly;
        // no per-row copies.
        let depth = ise_graph::depths_from_roots(
            rooted.dfg().succs_adjacency(),
            rooted.dfg().preds_adjacency(),
        );

        EnumContext {
            rooted,
            reach,
            dom,
            postdom,
            artificial,
            candidate_outputs,
            depth,
        }
    }

    /// The augmented graph.
    pub fn rooted(&self) -> &RootedDfg {
        &self.rooted
    }

    /// The underlying (non-augmented) data-flow graph.
    pub fn dfg(&self) -> &Dfg {
        self.rooted.dfg()
    }

    /// Pairwise reachability and forbidden-path information.
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// The dominator tree (rooted at the artificial source).
    pub fn dominator_tree(&self) -> &DominatorTree {
        &self.dom
    }

    /// The postdominator tree (rooted at the artificial sink).
    pub fn postdominator_tree(&self) -> &DominatorTree {
        &self.postdom
    }

    /// The artificial source and sink as a set, for use as an exclusion set when
    /// enumerating dominators.
    pub fn artificial(&self) -> &DenseNodeSet {
        &self.artificial
    }

    /// The non-forbidden original vertices: every legal cut member and therefore every
    /// legal chosen output.
    pub fn candidate_outputs(&self) -> &[NodeId] {
        &self.candidate_outputs
    }

    /// How many candidate outputs [`EnumContext::new`] would derive for `dfg`,
    /// without building the context. Batch schedulers use this to plan first-output
    /// task ranges (`crate::par::task_ranges`) before the per-block context exists;
    /// it is guaranteed (and unit-tested) to equal `candidate_outputs().len()`.
    pub fn candidate_output_count(dfg: &Dfg) -> usize {
        // Mirrors the `candidate_outputs` filter: the rooted graph forbids exactly
        // `F` ∪ `Iext` among original vertices, which `Dfg::is_forbidden` captures
        // as "forbidden or root".
        dfg.node_ids().filter(|&v| !dfg.is_forbidden(v)).count()
    }

    /// Longest-path depth (in edges) of `node` from the roots of the original graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the artificial source or sink.
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depth[node.index()]
    }

    /// Whether every path from the artificial source to `target` passes through a
    /// member of `set` (condition 1 of the generalized-dominator definition).
    ///
    /// An empty `set` dominates nothing (the source itself is never in `set`).
    pub fn set_dominates(&self, set: &DenseNodeSet, target: NodeId) -> bool {
        let mut visited = self.rooted.node_set();
        let mut stack = Vec::new();
        self.set_dominates_in(set, target, &mut visited, &mut stack)
    }

    /// Like [`EnumContext::set_dominates`], but reuses caller-provided scratch: the
    /// enumeration engine calls this once per seed candidate, so the DFS buffers must
    /// not be reallocated each time.
    ///
    /// `visited` must have the capacity of the augmented graph; both buffers are
    /// cleared on entry.
    ///
    /// # Panics
    ///
    /// Panics if `visited` was sized for a different graph.
    pub fn set_dominates_in(
        &self,
        set: &DenseNodeSet,
        target: NodeId,
        visited: &mut DenseNodeSet,
        stack: &mut Vec<NodeId>,
    ) -> bool {
        if set.is_empty() {
            return false;
        }
        let source = self.rooted.source();
        if set.contains(target) {
            return true;
        }
        // DFS from the source that never enters `set`; if it reaches `target`, some
        // path avoids the set.
        visited.clear();
        visited.insert(source);
        stack.clear();
        stack.push(source);
        while let Some(v) = stack.pop() {
            for &s in self.rooted.succs(v) {
                if s == target {
                    return false;
                }
                if !set.contains(s) && visited.insert(s) {
                    stack.push(s);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, Operation};

    fn sample() -> (EnumContext, [NodeId; 5]) {
        // a, b inputs; n = a+b; x = n<<1; st = store(x)
        let mut bld = DfgBuilder::new("ctx");
        let a = bld.input("a");
        let b = bld.input("b");
        let n = bld.node(Operation::Add, &[a, b]);
        let x = bld.node(Operation::Shl, &[n]);
        let st = bld.node(Operation::Store, &[x]);
        let ctx = EnumContext::new(bld.build().unwrap());
        (ctx, [a, b, n, x, st])
    }

    #[test]
    fn candidate_outputs_exclude_forbidden_and_inputs() {
        let (ctx, [a, b, n, x, st]) = sample();
        let c = ctx.candidate_outputs();
        assert!(c.contains(&n));
        assert!(c.contains(&x));
        assert!(!c.contains(&a));
        assert!(!c.contains(&b));
        assert!(!c.contains(&st), "stores are forbidden");
    }

    /// The context-free count used by batch schedulers to plan task ranges must
    /// agree with the derived candidate list for every graph shape.
    #[test]
    fn candidate_output_count_matches_the_context() {
        let (ctx, _) = sample();
        assert_eq!(
            EnumContext::candidate_output_count(ctx.dfg()),
            ctx.candidate_outputs().len()
        );
        // A graph with user-forbidden vertices and multiple roots.
        let mut b = DfgBuilder::new("mixed");
        let p = b.input("p");
        let q = b.input("q");
        let m = b.node(Operation::Mul, &[p, q]);
        let s = b.node(Operation::Store, &[m]);
        let _t = b.node(Operation::Add, &[m, p]);
        let _ = s;
        let ctx = EnumContext::new(b.build().unwrap());
        assert_eq!(
            EnumContext::candidate_output_count(ctx.dfg()),
            ctx.candidate_outputs().len()
        );
    }

    #[test]
    fn depths_follow_the_original_graph() {
        let (ctx, [a, _, n, x, st]) = sample();
        assert_eq!(ctx.depth(a), 0);
        assert_eq!(ctx.depth(n), 1);
        assert_eq!(ctx.depth(x), 2);
        assert_eq!(ctx.depth(st), 3);
    }

    #[test]
    fn set_dominates_checks_condition_one() {
        let (ctx, [a, b, n, x, _]) = sample();
        let both = DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), [a, b]);
        assert!(ctx.set_dominates(&both, n));
        assert!(ctx.set_dominates(&both, x));
        let only_a = DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), [a]);
        assert!(!ctx.set_dominates(&only_a, n), "paths via b avoid a");
        let just_n = DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), [n]);
        assert!(ctx.set_dominates(&just_n, x));
        let empty = ctx.rooted().node_set();
        assert!(!ctx.set_dominates(&empty, x));
        assert!(
            ctx.set_dominates(&just_n, n),
            "a set dominates its own members"
        );
    }

    #[test]
    fn trees_are_consistent_with_reachability() {
        let (ctx, [_, _, n, x, _]) = sample();
        assert!(ctx.dominator_tree().dominates(n, x));
        assert!(ctx.postdominator_tree().dominates(x, n));
        assert!(ctx.reach().reaches(n, x));
    }
}
