//! Brute-force cut enumeration over all vertex subsets.
//!
//! This is the specification-level oracle used by the test suite: it enumerates every
//! subset of the non-forbidden vertices of a (small) basic block, keeps those that are
//! valid cuts and nothing else. Its cost is `Θ(2^k)` where `k` is the number of
//! non-forbidden vertices, so it is only usable on graphs of a couple of dozen
//! candidate vertices — which is exactly what the correctness tests need.

use crate::config::Constraints;
use crate::context::EnumContext;
use crate::engine::{self, Enumerator, SearchState};
use crate::result::Enumeration;

/// Maximum number of candidate (non-forbidden) vertices accepted by
/// [`exhaustive_cuts`]; beyond this the subset space is too large to enumerate.
pub const MAX_EXHAUSTIVE_CANDIDATES: usize = 26;

/// Enumerates every valid cut by checking all subsets of non-forbidden vertices.
///
/// When `require_io_condition` is `true`, validity includes the technical input
/// condition of §3 (the definition used by the polynomial algorithm); when `false` it
/// does not (the definition used by the exhaustive baseline of Pozzi et al.).
///
/// # Panics
///
/// Panics if the graph has more than [`MAX_EXHAUSTIVE_CANDIDATES`] non-forbidden
/// vertices — use the real enumerators for anything larger.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{exhaustive_cuts, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let y = b.node(Operation::Add, &[x, a]);
/// let ctx = EnumContext::new(b.build()?);
/// let all = exhaustive_cuts(&ctx, &Constraints::new(2, 1)?, true);
/// assert_eq!(all.cuts.len(), 2); // {x} and {x, y}; {y} alone violates the input condition
/// # Ok(())
/// # }
/// ```
pub fn exhaustive_cuts(
    ctx: &EnumContext,
    constraints: &Constraints,
    require_io_condition: bool,
) -> Enumeration {
    let mut enumerator = ExhaustiveEnumerator {
        require_io_condition,
    };
    engine::run(&mut enumerator, ctx, constraints, None)
}

/// The brute-force subset oracle as an [`Enumerator`] over the shared engine: each
/// subset is staged in the engine's body bit set (via the raw accessors) and reported
/// without de-duplication, since the subset walk visits every body exactly once.
pub struct ExhaustiveEnumerator {
    /// Whether validity includes the technical input condition of §3.
    pub require_io_condition: bool,
}

impl Enumerator for ExhaustiveEnumerator {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(&mut self, state: &mut SearchState<'_>) {
        let candidates = state.ctx().candidate_outputs();
        assert!(
            candidates.len() <= MAX_EXHAUSTIVE_CANDIDATES,
            "exhaustive enumeration over {} candidate vertices is infeasible",
            candidates.len()
        );
        for mask in 1u64..(1u64 << candidates.len()) {
            state.body_clear();
            for (bit, &node) in candidates.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    state.body_insert(node);
                }
            }
            state.report_current(self.require_io_condition);
        }
        state.body_clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, NodeId, Operation};

    fn small() -> (EnumContext, [NodeId; 5]) {
        // a, c inputs; n = a + c; x = n << 1; y = n - c
        let mut b = DfgBuilder::new("small");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Shl, &[n]);
        let y = b.node(Operation::Sub, &[n, c]);
        let ctx = EnumContext::new(b.build().unwrap());
        (ctx, [a, c, n, x, y])
    }

    #[test]
    fn enumerates_exactly_the_valid_cuts() {
        let (ctx, [_, _, n, x, y]) = small();
        let constraints = Constraints::new(2, 2).unwrap();
        let found = exhaustive_cuts(&ctx, &constraints, true);
        let bodies: Vec<Vec<NodeId>> = found.cuts.iter().map(|c| c.body().to_vec()).collect();
        // All seven non-empty subsets of {n, x, y} are convex; those needing more than
        // two inputs are rejected: {x} alone needs only n; {y} needs n and c; etc.
        assert!(bodies.contains(&vec![n]));
        assert!(bodies.contains(&vec![x]));
        assert!(bodies.contains(&vec![y]));
        assert!(bodies.contains(&vec![n, x]));
        assert!(bodies.contains(&vec![n, y]));
        assert!(bodies.contains(&vec![n, x, y]));
        // {x, y} has inputs {n, c} (2) and outputs {x, y} (2): valid.
        assert!(bodies.contains(&vec![x, y]));
        assert_eq!(found.cuts.len(), 7);
        assert_eq!(found.stats.valid_cuts, 7);
    }

    #[test]
    fn io_constraints_filter_cuts() {
        let (ctx, [_, _, n, x, y]) = small();
        let constraints = Constraints::new(2, 1).unwrap();
        let found = exhaustive_cuts(&ctx, &constraints, true);
        let bodies: Vec<Vec<NodeId>> = found.cuts.iter().map(|c| c.body().to_vec()).collect();
        // Both x and y are externally visible, so every multi-node cut has two outputs
        // and only the single-node cuts survive the one-write-port constraint.
        assert_eq!(bodies.len(), 3);
        assert!(bodies.contains(&vec![n]));
        assert!(bodies.contains(&vec![x]));
        assert!(bodies.contains(&vec![y]));
        assert!(!bodies.contains(&vec![n, x]), "n also feeds y, two outputs");
        assert!(found.stats.rejected_io > 0);
    }

    #[test]
    fn forbidden_nodes_never_appear() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, a]);
        let ctx = EnumContext::new(b.build().unwrap());
        // Under the paper's technical input condition the only candidate {x} is
        // rejected: its input `ld` is reachable from the root only through the other
        // input `a` (this is exactly the class of cuts §3 excludes).
        let strict = exhaustive_cuts(&ctx, &Constraints::new(4, 4).unwrap(), true);
        assert!(strict.cuts.is_empty());
        // Without the technical condition, {x} is a valid cut and never contains the
        // forbidden load.
        let relaxed = exhaustive_cuts(&ctx, &Constraints::new(4, 4).unwrap(), false);
        assert!(relaxed.cuts.iter().all(|c| !c.contains(ld)));
        assert_eq!(relaxed.cuts.len(), 1);
        assert_eq!(relaxed.cuts[0].body().to_vec(), vec![x]);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn refuses_large_graphs() {
        let mut b = DfgBuilder::new("big");
        let a = b.input("a");
        let mut prev = a;
        for _ in 0..40 {
            prev = b.node(Operation::Add, &[prev]);
        }
        let ctx = EnumContext::new(b.build().unwrap());
        let _ = exhaustive_cuts(&ctx, &Constraints::new(2, 2).unwrap(), true);
    }
}
