//! Intra-block task-parallel enumeration: the Figure 3 search split at the
//! first-output level.
//!
//! The top level of the incremental algorithm's recursion is embarrassingly parallel:
//! the serial `PICK-OUTPUT` loop tries every candidate first output in order, and each
//! iteration fully unwinds the search state before the next begins (the push/pop
//! discipline restores the arena exactly). The *only* state that crosses first-output
//! subtrees is the de-duplication seen-set — and the seen-set never influences which
//! nodes the search visits, only whether a repeated candidate is re-counted (see
//! DESIGN.md §1.4 for the argument). A subtree rooted at one first output is therefore
//! an independent task.
//!
//! This module splits [`EnumContext::candidate_outputs`] into contiguous ranges
//! ([`task_ranges`]), runs the unmodified serial engine once per range
//! ([`run_root_task`], via [`crate::IncrementalEnumerator::with_root_range`]) and
//! merges the per-task results deterministically ([`merge_tasks`]): tasks are replayed
//! in range order against a global seen-set, so the merged [`Enumeration`] — cuts *and*
//! statistics — is byte-identical to the serial run for unbudgeted runs, for **any**
//! task count and any thread count. With a per-task search budget the result is still
//! deterministic in the task count (each subtree is truncated independently), just not
//! equal to the serially budgeted run; batch drivers must therefore derive the task
//! count from the block alone, never from the thread count.
//!
//! [`parallel_cuts`] bundles split → run-on-N-threads → merge behind one call; batch
//! drivers with their own scheduler (the `ise` CLI's two-level work queue) call the
//! three stages directly.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::config::{Constraints, PruningConfig};
use crate::context::EnumContext;
use crate::engine::{
    BodyStrategy, CandidateClass, CutKeySet, DedupMode, EngineOptions, SearchState, TaskHarvest,
};
use crate::incremental::{incremental_cuts_opts, IncrementalEnumerator};
use crate::result::Enumeration;
use crate::stats::EnumStats;

/// Configuration of one [`parallel_cuts`] run.
#[derive(Clone, Debug, Default)]
pub struct ParConfig {
    /// Number of first-output tasks to split the search into (clamped to the number
    /// of candidate outputs; `0` or `1` means run serially). The merged result is
    /// independent of this for unbudgeted runs; with a budget it is deterministic in
    /// the task count, so derive it from the block, not from the machine.
    pub tasks: usize,
    /// Worker threads executing the tasks (clamped to `[1, tasks]`). Never affects
    /// the result, only the wall time.
    pub threads: usize,
    /// Engine settings shared by every task; `max_search_nodes` applies per task.
    pub options: EngineOptions,
}

impl ParConfig {
    /// A default-options configuration with the given task and thread counts.
    pub fn new(tasks: usize, threads: usize) -> Self {
        ParConfig {
            tasks,
            threads,
            options: EngineOptions::default(),
        }
    }
}

/// What one first-output task produced; feed the outputs of a full partition, in
/// range order, to [`merge_tasks`]. Opaque: the classification log inside is an
/// implementation detail of the merge.
pub struct TaskOutput {
    harvest: TaskHarvest,
}

impl TaskOutput {
    /// The task's local statistics (diagnostics only — the merge recomputes the
    /// de-duplication-dependent counters globally).
    pub fn stats(&self) -> &EnumStats {
        &self.harvest.stats
    }
}

/// Splits `candidate_count` first-output candidates into `tasks` contiguous ranges
/// covering `0..candidate_count` in order (the partition [`merge_tasks`] expects).
/// Ranges differ in length by at most one; with more tasks than candidates the excess
/// ranges are empty.
///
/// # Example
///
/// ```
/// let ranges = ise_enum::par::task_ranges(10, 4);
/// assert_eq!(ranges, vec![0..2, 2..5, 5..7, 7..10]);
/// ```
pub fn task_ranges(candidate_count: usize, tasks: usize) -> Vec<Range<usize>> {
    let tasks = tasks.max(1);
    (0..tasks)
        .map(|i| (i * candidate_count / tasks)..((i + 1) * candidate_count / tasks))
        .collect()
}

/// Runs the serial engine over the first-output subtrees rooted at
/// `ctx.candidate_outputs()[roots]` — one task of the decomposition. Pure function of
/// its arguments; tasks of a partition can run on any threads in any order.
pub fn run_root_task(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    options: &EngineOptions,
    roots: Range<usize>,
) -> TaskOutput {
    let mut enumerator = IncrementalEnumerator::with_root_range(ctx, pruning, roots);
    let mut state = SearchState::new(ctx, constraints, options.max_search_nodes, options.strategy);
    state.set_dedup_mode(options.dedup_mode);
    if merge_uses_class_log(options) {
        state.enable_class_log();
    }
    crate::engine::Enumerator::search(&mut enumerator, &mut state);
    TaskOutput {
        harvest: state.finish_task(),
    }
}

/// Whether the merge replays per-task classification logs (dedup-first incremental
/// runs) or adds per-occurrence counters (validate-first and legacy-rebuild runs).
fn merge_uses_class_log(options: &EngineOptions) -> bool {
    options.dedup_mode == DedupMode::DedupFirst && options.strategy == BodyStrategy::Incremental
}

/// Merges the outputs of a full task partition (in range order) into one
/// [`Enumeration`].
///
/// The merge replays each task's first-seen candidates, in task order, against a
/// global seen-set: a candidate already seen by an earlier task is re-counted as a
/// duplicate exactly as the serial seen-set would have counted it, and everything
/// else replays its recorded classification. For unbudgeted runs the result — cut
/// list order included — is byte-identical to the serial run.
pub fn merge_tasks(
    ctx: &EnumContext,
    options: &EngineOptions,
    outputs: Vec<TaskOutput>,
) -> Enumeration {
    let mut stats = EnumStats::new();
    // Counters independent of de-duplication are plain sums: the tasks partition the
    // serial top-level loop, and nothing below it reads the seen-set.
    for out in &outputs {
        let s = out.harvest.stats;
        stats.candidates_checked += s.candidates_checked;
        stats.rejected_duplicate += s.rejected_duplicate;
        stats.dominator_runs += s.dominator_runs;
        stats.pruned_output_output += s.pruned_output_output;
        stats.pruned_output_input += s.pruned_output_input;
        stats.pruned_input_input += s.pruned_input_input;
        stats.pruned_dominator_input += s.pruned_dominator_input;
        stats.pruned_connectedness += s.pruned_connectedness;
        stats.pruned_build_s += s.pruned_build_s;
        stats.search_nodes += s.search_nodes;
    }

    let stride = ctx.rooted().num_nodes().div_ceil(64);
    let mut seen = CutKeySet::new(stride);
    let mut cuts = Vec::new();
    if merge_uses_class_log(options) {
        // Dedup-first: replay every first-seen key with its recorded classification.
        // Keys an earlier task already claimed become duplicates, exactly as the
        // serial run would have counted them at that point of its discovery order.
        for out in outputs {
            let harvest = out.harvest;
            debug_assert_eq!(harvest.seen.len(), harvest.classes.len());
            let mut cut_iter = harvest.cuts.into_iter();
            for (idx, &class) in harvest.classes.iter().enumerate() {
                if seen.insert(harvest.seen.key(idx)) {
                    CandidateClass::replay(class, &mut stats);
                    if class == CandidateClass::VALID {
                        cuts.push(cut_iter.next().expect("one cut per VALID entry"));
                    }
                } else {
                    stats.rejected_duplicate += 1;
                    if class == CandidateClass::VALID {
                        // An earlier task already reported this cut.
                        let _ = cut_iter.next().expect("one cut per VALID entry");
                    }
                }
            }
            debug_assert!(cut_iter.next().is_none(), "unconsumed task cuts");
        }
    } else {
        // Validate-first (and legacy rebuild): rejections are counted per occurrence
        // in serial runs too, so they stay plain sums; only the valid cuts need
        // global de-duplication by body key.
        for out in &outputs {
            let s = out.harvest.stats;
            stats.rejected_forbidden += s.rejected_forbidden;
            stats.rejected_io += s.rejected_io;
            stats.rejected_disconnected += s.rejected_disconnected;
            stats.rejected_depth += s.rejected_depth;
        }
        for out in outputs {
            for cut in out.harvest.cuts {
                if seen.insert(cut.body().words()) {
                    stats.valid_cuts += 1;
                    cuts.push(cut);
                } else {
                    stats.rejected_duplicate += 1;
                }
            }
        }
    }
    Enumeration { cuts, stats }
}

/// Splits the search into [`ParConfig::tasks`] first-output tasks, runs them on
/// [`ParConfig::threads`] worker threads pulling from an atomic cursor, and merges.
/// For unbudgeted runs the result equals [`crate::incremental_cuts_opts`] exactly
/// (cuts and statistics); thread count never changes it.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::par::{parallel_cuts, ParConfig};
/// use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let x = b.node(Operation::Shl, &[n]);
/// let _y = b.node(Operation::Sub, &[n, c]);
/// let ctx = EnumContext::new(b.build()?);
/// let constraints = Constraints::new(3, 2)?;
/// let pruning = PruningConfig::all();
///
/// let serial = incremental_cuts(&ctx, &constraints, &pruning);
/// let par = parallel_cuts(&ctx, &constraints, &pruning, &ParConfig::new(2, 2));
/// assert_eq!(par.stats, serial.stats);
/// # Ok(())
/// # }
/// ```
pub fn parallel_cuts(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    config: &ParConfig,
) -> Enumeration {
    let candidates = ctx.candidate_outputs().len();
    let tasks = config.tasks.clamp(1, candidates.max(1));
    if tasks <= 1 {
        return incremental_cuts_opts(ctx, constraints, pruning, &config.options);
    }
    let ranges = task_ranges(candidates, tasks);
    let slots: Vec<OnceLock<TaskOutput>> = (0..tasks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = config.threads.clamp(1, tasks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let task = cursor.fetch_add(1, Ordering::Relaxed);
                if task >= tasks {
                    break;
                }
                let output = run_root_task(
                    ctx,
                    constraints,
                    pruning,
                    &config.options,
                    ranges[task].clone(),
                );
                slots[task]
                    .set(output)
                    .ok()
                    .expect("each task slot is filled exactly once");
            });
        }
    });
    let outputs: Vec<TaskOutput> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task completed"))
        .collect();
    merge_tasks(ctx, &config.options, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::Cut;
    use ise_graph::DfgBuilder;
    use ise_graph::Operation;

    /// A block whose cuts are discoverable from several first outputs, so the merge
    /// must de-duplicate across tasks (multi-output cuts are found from either
    /// output's subtree).
    fn cross_task_ctx() -> EnumContext {
        let mut b = DfgBuilder::new("cross");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Mul, &[n, c]);
        let y = b.node(Operation::Sub, &[n, a]);
        let z = b.node(Operation::Xor, &[x, y]);
        b.mark_output(x);
        b.mark_output(y);
        b.mark_output(z);
        EnumContext::new(b.build().unwrap())
    }

    fn assert_identical(par: &Enumeration, serial: &Enumeration, label: &str) {
        assert_eq!(par.stats, serial.stats, "{label}: stats diverge");
        let par_keys: Vec<_> = par.cuts.iter().map(Cut::key).collect();
        let serial_keys: Vec<_> = serial.cuts.iter().map(Cut::key).collect();
        assert_eq!(par_keys, serial_keys, "{label}: cut order diverges");
    }

    #[test]
    fn task_ranges_partition_the_candidates() {
        for (n, tasks) in [(10, 3), (7, 7), (3, 5), (0, 2), (11, 1)] {
            let ranges = task_ranges(n, tasks);
            assert_eq!(ranges.len(), tasks.max(1));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..{n}");
        }
    }

    #[test]
    fn merged_tasks_reproduce_the_serial_run_exactly() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
        assert!(
            serial.stats.rejected_duplicate > 0,
            "the fixture must exercise cross-subtree duplicates"
        );
        for tasks in [2, 3, ctx.candidate_outputs().len()] {
            for threads in [1, 2, 4] {
                let mut config = ParConfig::new(tasks, threads);
                config.options = EngineOptions::default();
                let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
                assert_identical(&par, &serial, &format!("tasks={tasks} threads={threads}"));
            }
        }
    }

    #[test]
    fn merge_handles_every_dedup_mode_and_strategy() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(3, 2).unwrap();
        let pruning = PruningConfig::all();
        for (dedup_mode, strategy) in [
            (DedupMode::DedupFirst, BodyStrategy::Incremental),
            (DedupMode::ValidateFirst, BodyStrategy::Incremental),
            (DedupMode::DedupFirst, BodyStrategy::Rebuild),
        ] {
            let options = EngineOptions {
                max_search_nodes: None,
                strategy,
                dedup_mode,
            };
            let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &options);
            let mut config = ParConfig::new(3, 2);
            config.options = options;
            let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
            assert_identical(&par, &serial, &format!("{dedup_mode:?}/{strategy:?}"));
        }
    }

    #[test]
    fn manual_stage_pipeline_matches_the_bundled_entry_point() {
        // Drive split → run → merge directly, as the CLI's scheduler does.
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let options = EngineOptions::default();
        let ranges = task_ranges(ctx.candidate_outputs().len(), 2);
        let outputs: Vec<TaskOutput> = ranges
            .into_iter()
            .map(|r| run_root_task(&ctx, &constraints, &pruning, &options, r))
            .collect();
        assert!(outputs.iter().all(|o| o.stats().search_nodes > 0));
        let merged = merge_tasks(&ctx, &options, outputs);
        let mut config = ParConfig::new(2, 1);
        config.options = options;
        let bundled = parallel_cuts(&ctx, &constraints, &pruning, &config);
        assert_identical(&merged, &bundled, "manual vs bundled");
    }

    #[test]
    fn budgeted_tasks_are_deterministic_in_the_task_count() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let options = EngineOptions {
            max_search_nodes: Some(25),
            ..EngineOptions::default()
        };
        let mut reference = None;
        for threads in [1, 3] {
            let mut config = ParConfig::new(3, threads);
            config.options = options;
            let run = parallel_cuts(&ctx, &constraints, &pruning, &config);
            match &reference {
                None => reference = Some(run),
                Some(first) => assert_identical(&run, first, "budgeted determinism"),
            }
        }
    }
}
