//! Intra-block task-parallel enumeration: the Figure 3 search split at the
//! first-output level, with recursive task splitting and a work-stealing scheduler.
//!
//! The top level of the incremental algorithm's recursion is embarrassingly parallel:
//! the serial `PICK-OUTPUT` loop tries every candidate first output in order, and each
//! iteration fully unwinds the search state before the next begins (the push/pop
//! discipline restores the arena exactly). The *only* state that crosses first-output
//! subtrees is the de-duplication seen-set — and the seen-set never influences which
//! nodes the search visits, only whether a repeated candidate is re-counted (see
//! DESIGN.md §1.4 for the argument). A subtree rooted at one first output is therefore
//! an independent task.
//!
//! Three mechanisms make the decomposition scale past its static fan-out:
//!
//! * **Recursive task splitting.** A task that exceeds [`ParConfig::split_threshold`]
//!   search nodes *suspends* at its next decision boundary — between first-output
//!   roots, or between the first-level `PICK-INPUTS` decisions inside a root — and
//!   emits child tasks covering exactly the untouched remainder. No work is discarded
//!   or repeated; the suspension point is a pure function of (block, options,
//!   threshold), so the resulting task tree is identical for every thread count.
//!   Child ids extend the parent's id ([`TaskId`] is a path; lexicographic order is
//!   the serial traversal order), which is all the merge needs.
//! * **Work stealing.** [`WorkStealPool`] gives each worker its own deque: workers
//!   pop their newest item (their own freshly split children, for locality) and idle
//!   workers steal the oldest item from a peer — so a skewed subtree that keeps
//!   splitting is drained by whoever is free, instead of serializing one worker's
//!   tail. Scheduling order never affects the output: tasks are pure functions and
//!   the merge sorts by [`TaskId`].
//! * **Sharded merge.** [`merge_tasks_sharded`] stripes the global seen-set by the
//!   high bits of the cut-key hash into 16 independent shards (the `CanonMemo` stripe
//!   pattern), computes first-seen/duplicate verdicts per shard — in parallel when
//!   threads are available — and then emits cuts and statistics in one ordered pass.
//!   Equal keys always land in the same shard and shard-local order equals the serial
//!   replay order, so the verdicts (and thus the output bytes) never change.
//!
//! The merged [`Enumeration`] — cuts *and* statistics — is byte-identical to the
//! serial run for unbudgeted runs, for **any** task count, split threshold and thread
//! count. With a per-task search budget the result is still deterministic in (tasks,
//! split threshold), just not equal to the serially budgeted run; batch drivers must
//! therefore derive both knobs from the block and flags alone, never from the machine.
//!
//! [`parallel_cuts`] bundles split → run/steal → merge behind one call; batch drivers
//! with their own scheduler (the `ise` CLI) drive [`initial_tasks`], [`run_task`] and
//! [`merge_tasks_sharded`] directly over a shared [`WorkStealPool`].

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use ise_obs::{Counter, Recorder};

use crate::config::{Constraints, PruningConfig};
use crate::context::EnumContext;
use crate::engine::{
    BodyStrategy, CandidateClass, CutKeySet, DedupMode, EngineOptions, SearchState, TaskHarvest,
};
use crate::incremental::{IncrementalEnumerator, SuspendPoint};
use crate::result::Enumeration;
use crate::stats::EnumStats;

/// Number of seen-set shards in the parallel-reducible merge; mirrors the 16-way
/// stripe of `ise-canon`'s `CanonMemo`. Shard routing uses the top four hash bits,
/// the shard-local probe tables use the low bits — independent partitions.
const MERGE_SHARDS: usize = 16;

/// Configuration of one [`parallel_cuts`] run.
#[derive(Clone, Debug, Default)]
pub struct ParConfig {
    /// Number of first-output tasks to split the search into up front (clamped to the
    /// number of candidate outputs; `0` or `1` means one task). The merged result is
    /// independent of this for unbudgeted runs; with a budget it is deterministic in
    /// the task count, so derive it from the block, not from the machine.
    pub tasks: usize,
    /// Worker threads executing the tasks. Never affects the result, only the wall
    /// time.
    pub threads: usize,
    /// Engine settings shared by every task; `max_search_nodes` applies per task.
    pub options: EngineOptions,
    /// Recursive split threshold: a task that exceeds this many search nodes suspends
    /// at its next decision boundary and hands the remainder to child tasks. `None`
    /// disables splitting (the static fan-out of `tasks` is final). Like `tasks`,
    /// this changes the work decomposition but never the unbudgeted result.
    pub split_threshold: Option<usize>,
}

impl ParConfig {
    /// A default-options configuration with the given task and thread counts and no
    /// recursive splitting.
    pub fn new(tasks: usize, threads: usize) -> Self {
        ParConfig {
            tasks,
            threads,
            options: EngineOptions::default(),
            split_threshold: None,
        }
    }
}

/// Deterministic identity of one task in the (possibly recursive) decomposition.
///
/// The id is the path from the static fan-out to the task: initial task `i` is `[i]`,
/// and the `j`-th child spawned by a suspending task appends `j` to its parent's
/// path. Because a parent's output covers the traversal prefix it completed before
/// suspending, and children cover the remainder in order, **lexicographic id order is
/// exactly the serial traversal order** — sorting task outputs by id is all the
/// deterministic merge needs, no matter which worker ran what when.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(Vec<u32>);

impl TaskId {
    fn initial(i: u32) -> Self {
        TaskId(vec![i])
    }

    fn child(&self, j: u32) -> Self {
        let mut path = self.0.clone();
        path.push(j);
        TaskId(path)
    }

    /// The id as a path of child indices (`[i]` for initial task `i`).
    pub fn path(&self) -> &[u32] {
        &self.0
    }
}

/// One schedulable unit of the decomposition: a contiguous range of first-output
/// roots, plus — for a task resuming a root its parent suspended inside — the index
/// of the first root's first unowned decision. Produced by [`initial_tasks`] and by
/// [`run_task`] (children of a suspended task); pure data, freely sendable between
/// workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    id: TaskId,
    roots: Range<usize>,
    first_root_skip: Option<usize>,
}

impl TaskSpec {
    /// The task's deterministic identity (the merge sort key).
    pub fn id(&self) -> &TaskId {
        &self.id
    }

    /// Child tasks covering exactly the work left untouched at `suspend`: the
    /// remainder of a partially explored root first (it precedes later roots in the
    /// serial order), then the untouched roots split in halves so the task tree stays
    /// shallow. Ids extend this task's id in emission order.
    fn children(&self, suspend: SuspendPoint) -> Vec<TaskSpec> {
        let mut parts: Vec<(Range<usize>, Option<usize>)> = Vec::new();
        match suspend {
            SuspendPoint::AtRoot { next } => split_roots(next..self.roots.end, &mut parts),
            SuspendPoint::InRoot {
                root,
                next_decision,
            } => {
                parts.push((root..root + 1, Some(next_decision)));
                split_roots(root + 1..self.roots.end, &mut parts);
            }
        }
        parts
            .into_iter()
            .enumerate()
            .map(|(j, (roots, first_root_skip))| TaskSpec {
                id: self.id.child(j as u32),
                roots,
                first_root_skip,
            })
            .collect()
    }
}

/// Splits a root range into at most two non-empty halves (none if it is empty).
fn split_roots(range: Range<usize>, parts: &mut Vec<(Range<usize>, Option<usize>)>) {
    match range.len() {
        0 => {}
        1 => parts.push((range, None)),
        len => {
            let mid = range.start + len / 2;
            parts.push((range.start..mid, None));
            parts.push((mid..range.end, None));
        }
    }
}

/// What one task produced; feed the outputs of a completed decomposition, sorted by
/// [`TaskId`], to [`merge_tasks_sharded`]. Opaque: the classification log inside is
/// an implementation detail of the merge.
pub struct TaskOutput {
    harvest: TaskHarvest,
}

impl TaskOutput {
    /// The task's local statistics (diagnostics only — the merge recomputes the
    /// de-duplication-dependent counters globally).
    pub fn stats(&self) -> &EnumStats {
        &self.harvest.stats
    }
}

/// Splits `candidate_count` first-output candidates into at most `tasks` contiguous
/// ranges covering `0..candidate_count` in order (the partition the merge expects).
/// Ranges differ in length by at most one, and every returned range is **non-empty**:
/// with more tasks than candidates the excess ranges are skipped rather than turned
/// into degenerate scheduled tasks, so the returned vector may be shorter than
/// `tasks` (and empty when `candidate_count` is zero).
///
/// # Example
///
/// ```
/// let ranges = ise_enum::par::task_ranges(10, 4);
/// assert_eq!(ranges, vec![0..2, 2..5, 5..7, 7..10]);
/// assert_eq!(ise_enum::par::task_ranges(2, 4), vec![0..1, 1..2]);
/// ```
pub fn task_ranges(candidate_count: usize, tasks: usize) -> Vec<Range<usize>> {
    let tasks = tasks.max(1);
    (0..tasks)
        .map(|i| (i * candidate_count / tasks)..((i + 1) * candidate_count / tasks))
        .filter(|range| !range.is_empty())
        .collect()
}

/// The initial (pre-splitting) task specs of a decomposition into `tasks` contiguous
/// root ranges: one spec per non-empty range of [`task_ranges`], with ids `[0]`,
/// `[1]`, … in range order.
pub fn initial_tasks(candidate_count: usize, tasks: usize) -> Vec<TaskSpec> {
    task_ranges(candidate_count, tasks)
        .into_iter()
        .enumerate()
        .map(|(i, roots)| TaskSpec {
            id: TaskId::initial(i as u32),
            roots,
            first_root_skip: None,
        })
        .collect()
}

/// Runs one task of the decomposition: the serial engine over the subtrees rooted at
/// `ctx.candidate_outputs()[spec.roots]` (minus any decision prefix owned by the
/// task's ancestors), suspending once the search exceeds `split_threshold` nodes.
/// Returns the task's output plus the child tasks covering whatever the suspension
/// left untouched (empty when the task ran to completion).
///
/// Pure function of its arguments — workers can run tasks in any order on any thread
/// — and zero-waste: a suspended task keeps everything it explored, so the total work
/// across a task tree equals the serial run's exactly.
pub fn run_task(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    options: &EngineOptions,
    split_threshold: Option<usize>,
    spec: &TaskSpec,
) -> (TaskOutput, Vec<TaskSpec>) {
    run_task_obs(
        ctx,
        constraints,
        pruning,
        options,
        split_threshold,
        spec,
        None,
    )
}

/// [`run_task`] with an optional [`Recorder`] receiving the task's lifecycle: a
/// per-task span (named after the [`TaskId`] path, so Chrome-trace timelines nest
/// tasks under their worker threads), the engine's per-phase timings, and split /
/// child-spawn counters. Recording never changes the task's output.
#[allow(clippy::too_many_arguments)]
pub fn run_task_obs(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    options: &EngineOptions,
    split_threshold: Option<usize>,
    spec: &TaskSpec,
    rec: Option<&dyn Recorder>,
) -> (TaskOutput, Vec<TaskSpec>) {
    let span = match rec {
        Some(rec) if rec.enabled() => {
            let path: Vec<String> = spec.id.path().iter().map(u32::to_string).collect();
            rec.span_begin("task", &format!("task {}", path.join(".")))
        }
        _ => ise_obs::SpanToken::NONE,
    };
    let mut enumerator = IncrementalEnumerator::with_root_range(ctx, pruning, spec.roots.clone());
    enumerator.set_task_split(split_threshold, spec.first_root_skip);
    let mut state = SearchState::new(ctx, constraints, options.max_search_nodes, options.strategy);
    state.set_dedup_mode(options.dedup_mode);
    if let Some(rec) = rec {
        state.set_recorder(rec);
    }
    if merge_uses_class_log(options) {
        state.enable_class_log();
    }
    crate::engine::Enumerator::search(&mut enumerator, &mut state);
    let children = match enumerator.take_suspension() {
        Some(suspend) => spec.children(suspend),
        None => Vec::new(),
    };
    let output = TaskOutput {
        harvest: state.finish_task(),
    };
    if let Some(rec) = rec {
        rec.add("ise_pool_tasks_total", 1);
        if !children.is_empty() {
            rec.add("ise_pool_splits_total", 1);
            rec.add("ise_pool_children_spawned_total", children.len() as u64);
        }
        rec.observe(
            "ise_pool_task_nodes",
            output.harvest.stats.search_nodes as u64,
        );
        rec.span_end(span);
    }
    (output, children)
}

/// Runs the serial engine over the first-output subtrees rooted at
/// `ctx.candidate_outputs()[roots]` — one task of a static (non-splitting)
/// decomposition. Pure function of its arguments; tasks of a partition can run on any
/// threads in any order.
pub fn run_root_task(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    options: &EngineOptions,
    roots: Range<usize>,
) -> TaskOutput {
    let spec = TaskSpec {
        id: TaskId::initial(0),
        roots,
        first_root_skip: None,
    };
    run_task(ctx, constraints, pruning, options, None, &spec).0
}

/// Whether the merge replays per-task classification logs (dedup-first incremental
/// runs) or adds per-occurrence counters (validate-first and legacy-rebuild runs).
fn merge_uses_class_log(options: &EngineOptions) -> bool {
    options.dedup_mode == DedupMode::DedupFirst && options.strategy == BodyStrategy::Incremental
}

/// A work-stealing scheduler over per-worker deques; `std`-only.
///
/// Each worker owns one deque. [`pop`](Self::pop) serves the worker's own newest item
/// first (LIFO — freshly split children, still warm in cache) and, when the own deque
/// is empty, steals the *oldest* item from a peer (FIFO — the oldest items are the
/// coarsest, so a steal moves the most work per lock acquisition). An atomic
/// in-flight count covering queued *and* running items gives exact termination:
/// `pop` returns `None` only when nothing is queued anywhere and no running item can
/// spawn more children.
///
/// The pool schedules; it never sequences results. Users tag items with their own
/// deterministic order (the enumeration tasks carry a [`TaskId`]) and sort after the
/// pool drains.
pub struct WorkStealPool<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    in_flight: AtomicUsize,
    obs: PoolCounters,
}

/// Counter handles for the pool's scheduling events. All handles are disabled
/// (single null-check per event) until [`WorkStealPool::set_recorder`] arms them.
#[derive(Default)]
struct PoolCounters {
    /// Items seeded into the pool up front.
    seeded: Counter,
    /// Items pushed by a running item (split children).
    pushed: Counter,
    /// Items a worker popped from its own deque.
    own_pops: Counter,
    /// Items a worker stole from a peer's deque.
    steals: Counter,
    /// Items marked fully processed.
    done: Counter,
}

impl<T> WorkStealPool<T> {
    /// A pool with one deque per worker.
    pub fn new(workers: usize) -> Self {
        WorkStealPool {
            queues: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
            in_flight: AtomicUsize::new(0),
            obs: PoolCounters::default(),
        }
    }

    /// Arms the scheduling counters (`ise_pool_seeded_total`, `ise_pool_pushed_total`,
    /// `ise_pool_own_pops_total`, `ise_pool_steals_total`, `ise_pool_done_total`).
    /// The ledger `own_pops + steals == done` holds whenever the pool has drained.
    /// Recording never affects scheduling.
    pub fn set_recorder(&mut self, rec: &dyn Recorder) {
        self.obs = PoolCounters {
            seeded: rec.counter("ise_pool_seeded_total"),
            pushed: rec.counter("ise_pool_pushed_total"),
            own_pops: rec.counter("ise_pool_own_pops_total"),
            steals: rec.counter("ise_pool_steals_total"),
            done: rec.counter("ise_pool_done_total"),
        };
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Distributes initial items round-robin across the worker deques.
    pub fn seed<I: IntoIterator<Item = T>>(&self, items: I) {
        for (i, item) in items.into_iter().enumerate() {
            self.in_flight.fetch_add(1, Ordering::AcqRel);
            self.obs.seeded.incr();
            let queue = &self.queues[i % self.queues.len()];
            queue.lock().expect("pool lock poisoned").push_back(item);
        }
    }

    /// Enqueues an item produced while processing another one onto `worker`'s own
    /// deque. Must be called *before* the producing item's [`done`](Self::done), so
    /// the in-flight count never drops to zero while work remains.
    pub fn push(&self, worker: usize, item: T) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.obs.pushed.incr();
        self.queues[worker]
            .lock()
            .expect("pool lock poisoned")
            .push_back(item);
    }

    /// Next item for `worker`: its own deque first (newest), then stealing the oldest
    /// item from a peer. Blocks (spinning with `yield_now`) while other workers still
    /// process items that may split; returns `None` only when everything is done.
    pub fn pop(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(item) = self.queues[worker]
                .lock()
                .expect("pool lock poisoned")
                .pop_back()
            {
                self.obs.own_pops.incr();
                return Some(item);
            }
            let n = self.queues.len();
            for offset in 1..n {
                let victim = &self.queues[(worker + offset) % n];
                if let Some(item) = victim.lock().expect("pool lock poisoned").pop_front() {
                    self.obs.steals.incr();
                    return Some(item);
                }
            }
            if self.in_flight.load(Ordering::Acquire) == 0 {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Marks one popped item fully processed. Call after pushing any children the
    /// item spawned.
    pub fn done(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.obs.done.incr();
    }
}

/// Merges the outputs of a completed decomposition (sorted by [`TaskId`], which
/// [`parallel_cuts`] and the CLI scheduler do after draining the pool) into one
/// [`Enumeration`], exactly like [`merge_tasks_sharded`] with one merge thread.
pub fn merge_tasks(
    ctx: &EnumContext,
    options: &EngineOptions,
    outputs: Vec<TaskOutput>,
) -> Enumeration {
    merge_tasks_sharded(ctx, options, outputs, 1)
}

/// Merges the outputs of a completed decomposition (in [`TaskId`] order) into one
/// [`Enumeration`] via the sharded, parallel-reducible replay.
///
/// Conceptually the merge replays each task's first-seen candidates, in task order,
/// against a global seen-set: a candidate an earlier task (or an earlier entry of the
/// same task) already claimed is re-counted as a duplicate exactly as the serial
/// seen-set would have counted it, and everything else replays its recorded
/// classification. The implementation splits that replay by key hash into 16
/// independent shards reduced in parallel (up to `threads` at a time), then emits
/// cuts and statistics in one ordered, hash-free pass. Equal keys
/// share a shard and shard-local order preserves task order, so the verdicts — and
/// the output bytes, cut list order included — match the serial replay for every
/// `threads` value. For unbudgeted runs the result is byte-identical to the serial
/// enumeration.
pub fn merge_tasks_sharded(
    ctx: &EnumContext,
    options: &EngineOptions,
    outputs: Vec<TaskOutput>,
    threads: usize,
) -> Enumeration {
    merge_tasks_sharded_obs(ctx, options, outputs, threads, None)
}

/// [`merge_tasks_sharded`] with an optional [`Recorder`]: the merge runs under a
/// `merge` span and each seen-set shard's reduction time lands in the
/// `ise_merge_shard_ns` histogram, making merge serialization measurable.
/// Recording never changes the merged result.
pub fn merge_tasks_sharded_obs(
    ctx: &EnumContext,
    options: &EngineOptions,
    outputs: Vec<TaskOutput>,
    threads: usize,
    rec: Option<&dyn Recorder>,
) -> Enumeration {
    let span = match rec {
        Some(rec) => rec.span_begin("merge", "merge_tasks_sharded"),
        None => ise_obs::SpanToken::NONE,
    };
    let merged = merge_tasks_sharded_inner(ctx, options, outputs, threads, rec);
    if let Some(rec) = rec {
        rec.span_end(span);
    }
    merged
}

fn merge_tasks_sharded_inner(
    ctx: &EnumContext,
    options: &EngineOptions,
    outputs: Vec<TaskOutput>,
    threads: usize,
    rec: Option<&dyn Recorder>,
) -> Enumeration {
    let mut stats = EnumStats::new();
    // Counters independent of de-duplication are plain sums: the tasks partition the
    // serial traversal (recursive splits suspend and resume at decision boundaries
    // without re-counting), and nothing below the top level reads the seen-set.
    for out in &outputs {
        let s = out.harvest.stats;
        stats.candidates_checked += s.candidates_checked;
        stats.rejected_duplicate += s.rejected_duplicate;
        stats.dominator_runs += s.dominator_runs;
        stats.pruned_output_output += s.pruned_output_output;
        stats.pruned_output_input += s.pruned_output_input;
        stats.pruned_input_input += s.pruned_input_input;
        stats.pruned_dominator_input += s.pruned_dominator_input;
        stats.pruned_connectedness += s.pruned_connectedness;
        stats.pruned_build_s += s.pruned_build_s;
        stats.search_nodes += s.search_nodes;
    }

    let stride = ctx.rooted().num_nodes().div_ceil(64);
    let mut cuts = Vec::new();
    if merge_uses_class_log(options) {
        // Dedup-first: shard-reduce the first-seen/duplicate verdicts, then replay
        // every entry with its recorded classification in task order. Keys an earlier
        // task already claimed become duplicates, exactly as the serial run would
        // have counted them at that point of its discovery order.
        let lens: Vec<usize> = outputs.iter().map(|o| o.harvest.seen.len()).collect();
        let duplicate = duplicate_flags(
            &lens,
            stride,
            |t, e| outputs[t].harvest.seen.key(e),
            threads,
            rec,
        );
        for (t, out) in outputs.into_iter().enumerate() {
            let harvest = out.harvest;
            debug_assert_eq!(harvest.seen.len(), harvest.classes.len());
            let mut cut_iter = harvest.cuts.into_iter();
            for (idx, &class) in harvest.classes.iter().enumerate() {
                if !duplicate[t][idx] {
                    CandidateClass::replay(class, &mut stats);
                    if class == CandidateClass::VALID {
                        cuts.push(cut_iter.next().expect("one cut per VALID entry"));
                    }
                } else {
                    stats.rejected_duplicate += 1;
                    if class == CandidateClass::VALID {
                        // An earlier task already reported this cut.
                        let _ = cut_iter.next().expect("one cut per VALID entry");
                    }
                }
            }
            debug_assert!(cut_iter.next().is_none(), "unconsumed task cuts");
        }
    } else {
        // Validate-first (and legacy rebuild): rejections are counted per occurrence
        // in serial runs too, so they stay plain sums; only the valid cuts need
        // global de-duplication by body key — shard-reduced the same way.
        for out in &outputs {
            let s = out.harvest.stats;
            stats.rejected_forbidden += s.rejected_forbidden;
            stats.rejected_io += s.rejected_io;
            stats.rejected_disconnected += s.rejected_disconnected;
            stats.rejected_depth += s.rejected_depth;
        }
        let lens: Vec<usize> = outputs.iter().map(|o| o.harvest.cuts.len()).collect();
        let duplicate = duplicate_flags(
            &lens,
            stride,
            |t, c| outputs[t].harvest.cuts[c].body().words(),
            threads,
            rec,
        );
        for (t, out) in outputs.into_iter().enumerate() {
            for (c, cut) in out.harvest.cuts.into_iter().enumerate() {
                if !duplicate[t][c] {
                    stats.valid_cuts += 1;
                    cuts.push(cut);
                } else {
                    stats.rejected_duplicate += 1;
                }
            }
        }
    }
    Enumeration { cuts, stats }
}

/// Computes, for every `(task, entry)` key of a task sequence, whether it duplicates
/// an earlier key — an earlier entry of the same task or any entry of an earlier task
/// — using [`MERGE_SHARDS`] hash-striped seen-set shards reduced independently (in
/// parallel when `threads > 1`).
///
/// Determinism: equal keys hash equally and therefore meet in the same shard, and
/// each shard inserts its keys in `(task, entry)` order — the serial replay order
/// restricted to that shard — so the first-seen verdicts are exactly the serial
/// ones regardless of which thread reduced which shard.
fn duplicate_flags<'a, F>(
    lens: &[usize],
    stride: usize,
    key_of: F,
    threads: usize,
    rec: Option<&dyn Recorder>,
) -> Vec<Vec<bool>>
where
    F: Fn(usize, usize) -> &'a [u64] + Sync,
{
    let tasks = lens.len();
    // Phase 1: hash every key once, in parallel over tasks; the hash routes the key
    // to its shard (top four bits) and seeds the shard's probe table (low bits).
    let hash_slots: Vec<OnceLock<Vec<u64>>> = (0..tasks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let hash_workers = threads.clamp(1, tasks.max(1));
    std::thread::scope(|scope| {
        for _ in 0..hash_workers {
            scope.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                let hashes: Vec<u64> = (0..lens[t])
                    .map(|e| CutKeySet::hash_key(key_of(t, e)))
                    .collect();
                assert!(
                    hash_slots[t].set(hashes).is_ok(),
                    "each hash slot is filled exactly once"
                );
            });
        }
    });
    let hashes: Vec<&Vec<u64>> = hash_slots
        .iter()
        .map(|slot| slot.get().expect("every hash slot filled"))
        .collect();

    // Phase 2: per-shard replay. Each shard walks the entries it owns in (task,
    // entry) order against its own seen-set and records the duplicates.
    let dup_slots: Vec<OnceLock<Vec<(u32, u32)>>> =
        (0..MERGE_SHARDS).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let shard_workers = threads.clamp(1, MERGE_SHARDS);
    std::thread::scope(|scope| {
        for _ in 0..shard_workers {
            scope.spawn(|| loop {
                let shard = cursor.fetch_add(1, Ordering::Relaxed);
                if shard >= MERGE_SHARDS {
                    break;
                }
                let shard_start = rec.map(|_| Instant::now());
                let mut seen = CutKeySet::new(stride);
                let mut duplicates = Vec::new();
                for (t, task_hashes) in hashes.iter().enumerate() {
                    for (e, &hash) in task_hashes.iter().enumerate() {
                        if (hash >> 60) as usize == shard
                            && !seen.insert_prehashed(key_of(t, e), hash)
                        {
                            duplicates.push((t as u32, e as u32));
                        }
                    }
                }
                if let (Some(rec), Some(start)) = (rec, shard_start) {
                    rec.observe("ise_merge_shard_ns", start.elapsed().as_nanos() as u64);
                }
                assert!(
                    dup_slots[shard].set(duplicates).is_ok(),
                    "each shard slot is filled exactly once"
                );
            });
        }
    });

    // Phase 3: scatter the (sparse) duplicate verdicts into per-task flag vectors for
    // the ordered emit pass.
    let mut flags: Vec<Vec<bool>> = lens.iter().map(|&len| vec![false; len]).collect();
    for slot in dup_slots {
        for (t, e) in slot.into_inner().expect("every shard slot filled") {
            flags[t as usize][e as usize] = true;
        }
    }
    flags
}

/// A traced [`parallel_cuts`] run: the merged enumeration plus per-task diagnostics.
pub struct ParRun {
    /// The merged result — byte-identical to the serial run when unbudgeted.
    pub enumeration: Enumeration,
    /// Per-task `search_nodes`, in deterministic merge ([`TaskId`]) order. Its length
    /// is the final task count, including recursively split children; the max/mean
    /// ratio of the values is the load-skew measure the E7 bench reports.
    pub task_nodes: Vec<usize>,
}

/// Splits the search into [`ParConfig::tasks`] first-output tasks (recursively
/// re-split past [`ParConfig::split_threshold`] nodes), runs them on
/// [`ParConfig::threads`] work-stealing workers, and merges. For unbudgeted runs the
/// result equals [`crate::incremental_cuts_opts`] exactly (cuts and statistics);
/// neither thread count nor scheduling order ever changes it.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::par::{parallel_cuts, ParConfig};
/// use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let x = b.node(Operation::Shl, &[n]);
/// let _y = b.node(Operation::Sub, &[n, c]);
/// let ctx = EnumContext::new(b.build()?);
/// let constraints = Constraints::new(3, 2)?;
/// let pruning = PruningConfig::all();
///
/// let serial = incremental_cuts(&ctx, &constraints, &pruning);
/// let par = parallel_cuts(&ctx, &constraints, &pruning, &ParConfig::new(2, 2));
/// assert_eq!(par.stats, serial.stats);
/// # Ok(())
/// # }
/// ```
pub fn parallel_cuts(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    config: &ParConfig,
) -> Enumeration {
    parallel_cuts_traced(ctx, constraints, pruning, config).enumeration
}

/// [`parallel_cuts`] with per-task diagnostics — the entry point of the E7 scaling
/// bench, which reports per-task node counts and the load-skew ratio.
pub fn parallel_cuts_traced(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    config: &ParConfig,
) -> ParRun {
    parallel_cuts_obs(ctx, constraints, pruning, config, None)
}

/// [`parallel_cuts_traced`] with an optional [`Recorder`]: worker threads are named
/// in trace output, every task runs under its own span ([`run_task_obs`]), the pool's
/// scheduling counters are armed, and the merge is timed per shard. Recording never
/// changes the result — the obs-identity integration test pins byte equality against
/// recording-off runs.
pub fn parallel_cuts_obs(
    ctx: &EnumContext,
    constraints: &Constraints,
    pruning: &PruningConfig,
    config: &ParConfig,
    rec: Option<&dyn Recorder>,
) -> ParRun {
    let candidates = ctx.candidate_outputs().len();
    let tasks = config.tasks.clamp(1, candidates.max(1));
    let specs = initial_tasks(candidates, tasks);
    if specs.is_empty() || (specs.len() == 1 && config.split_threshold.is_none()) {
        // Degenerate decompositions (no candidates, or a single task with splitting
        // off) are exactly the serial run; skip the scheduler and the merge replay.
        let enumeration = crate::incremental::incremental_cuts_obs(
            ctx,
            constraints,
            pruning,
            &config.options,
            rec,
        );
        let nodes = enumeration.stats.search_nodes;
        return ParRun {
            enumeration,
            task_nodes: vec![nodes],
        };
    }
    // With recursive splitting a single initial task can still fan out, so only the
    // static decomposition clamps workers to the task count.
    let workers = match config.split_threshold {
        Some(_) => config.threads.max(1),
        None => config.threads.clamp(1, specs.len()),
    };
    let mut pool = WorkStealPool::new(workers);
    if let Some(rec) = rec {
        pool.set_recorder(rec);
    }
    pool.seed(specs);
    let results: Mutex<Vec<(TaskId, TaskOutput)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let pool = &pool;
            let results = &results;
            scope.spawn(move || {
                if let Some(rec) = rec {
                    rec.set_thread_name(&format!("worker-{worker}"));
                }
                while let Some(spec) = pool.pop(worker) {
                    let (output, children) = run_task_obs(
                        ctx,
                        constraints,
                        pruning,
                        &config.options,
                        config.split_threshold,
                        &spec,
                        rec,
                    );
                    for child in children {
                        pool.push(worker, child);
                    }
                    results
                        .lock()
                        .expect("result lock poisoned")
                        .push((spec.id, output));
                    pool.done();
                }
            });
        }
    });
    let mut outputs = results.into_inner().expect("result lock poisoned");
    outputs.sort_by(|a, b| a.0.cmp(&b.0));
    let task_nodes = outputs
        .iter()
        .map(|(_, out)| out.stats().search_nodes)
        .collect();
    let outputs: Vec<TaskOutput> = outputs.into_iter().map(|(_, out)| out).collect();
    ParRun {
        enumeration: merge_tasks_sharded_obs(ctx, &config.options, outputs, config.threads, rec),
        task_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::Cut;
    use crate::incremental::incremental_cuts_opts;
    use ise_graph::DfgBuilder;
    use ise_graph::Operation;

    /// A block whose cuts are discoverable from several first outputs, so the merge
    /// must de-duplicate across tasks (multi-output cuts are found from either
    /// output's subtree).
    fn cross_task_ctx() -> EnumContext {
        let mut b = DfgBuilder::new("cross");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Mul, &[n, c]);
        let y = b.node(Operation::Sub, &[n, a]);
        let z = b.node(Operation::Xor, &[x, y]);
        b.mark_output(x);
        b.mark_output(y);
        b.mark_output(z);
        EnumContext::new(b.build().unwrap())
    }

    fn assert_identical(par: &Enumeration, serial: &Enumeration, label: &str) {
        assert_eq!(par.stats, serial.stats, "{label}: stats diverge");
        let par_keys: Vec<_> = par.cuts.iter().map(Cut::key).collect();
        let serial_keys: Vec<_> = serial.cuts.iter().map(Cut::key).collect();
        assert_eq!(par_keys, serial_keys, "{label}: cut order diverges");
    }

    #[test]
    fn task_ranges_partition_the_candidates() {
        for (n, tasks) in [(10, 3), (7, 7), (3, 5), (0, 2), (11, 1)] {
            let ranges = task_ranges(n, tasks);
            assert!(
                ranges.len() <= tasks.max(1),
                "never more ranges than requested tasks"
            );
            let mut next = 0;
            for r in &ranges {
                assert!(!r.is_empty(), "({n}, {tasks}): no empty ranges");
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..{n}");
        }
    }

    #[test]
    fn task_ranges_skip_degenerate_fanout() {
        // More tasks than candidates: one non-empty range per candidate, no empties.
        assert_eq!(task_ranges(3, 5), vec![0..1, 1..2, 2..3]);
        assert_eq!(task_ranges(0, 4), vec![]);
        assert_eq!(initial_tasks(2, 16).len(), 2);
    }

    #[test]
    fn work_steal_pool_drains_dynamic_items() {
        let pool: WorkStealPool<usize> = WorkStealPool::new(3);
        pool.seed([10, 20, 30]);
        let drained = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..pool.workers() {
                let pool = &pool;
                let drained = &drained;
                scope.spawn(move || {
                    while let Some(item) = pool.pop(worker) {
                        // Items under 10 are "children" spawned dynamically.
                        if item >= 10 {
                            pool.push(worker, item / 10);
                        }
                        drained.lock().unwrap().push(item);
                        pool.done();
                    }
                });
            }
        });
        let mut seen = drained.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 10, 20, 30]);
    }

    #[test]
    fn merged_tasks_reproduce_the_serial_run_exactly() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
        assert!(
            serial.stats.rejected_duplicate > 0,
            "the fixture must exercise cross-subtree duplicates"
        );
        for tasks in [2, 3, ctx.candidate_outputs().len()] {
            for threads in [1, 2, 4] {
                let mut config = ParConfig::new(tasks, threads);
                config.options = EngineOptions::default();
                let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
                assert_identical(&par, &serial, &format!("tasks={tasks} threads={threads}"));
            }
        }
    }

    #[test]
    fn recursive_splitting_reproduces_the_serial_run_exactly() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
        for split_threshold in [1, 2, 5, 50] {
            for tasks in [1, 2, 4] {
                for threads in [1, 3] {
                    let mut config = ParConfig::new(tasks, threads);
                    config.split_threshold = Some(split_threshold);
                    let run = parallel_cuts_traced(&ctx, &constraints, &pruning, &config);
                    assert_identical(
                        &run.enumeration,
                        &serial,
                        &format!("split={split_threshold} tasks={tasks} threads={threads}"),
                    );
                    assert_eq!(
                        run.task_nodes.iter().sum::<usize>(),
                        serial.stats.search_nodes,
                        "zero-waste splitting: per-task nodes sum to the serial count"
                    );
                }
            }
        }
        // A tiny threshold must actually exercise splitting.
        let mut config = ParConfig::new(1, 1);
        config.split_threshold = Some(1);
        let run = parallel_cuts_traced(&ctx, &constraints, &pruning, &config);
        assert!(
            run.task_nodes.len() > 1,
            "threshold 1 must split the single initial task"
        );
    }

    #[test]
    fn splitting_is_deterministic_in_the_thread_count() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let mut plans = Vec::new();
        for threads in [1, 2, 8] {
            let mut config = ParConfig::new(2, threads);
            config.split_threshold = Some(3);
            let run = parallel_cuts_traced(&ctx, &constraints, &pruning, &config);
            plans.push(run.task_nodes);
        }
        assert_eq!(plans[0], plans[1], "split plan must not depend on threads");
        assert_eq!(plans[0], plans[2], "split plan must not depend on threads");
    }

    #[test]
    fn merge_handles_every_dedup_mode_and_strategy() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(3, 2).unwrap();
        let pruning = PruningConfig::all();
        for (dedup_mode, strategy) in [
            (DedupMode::DedupFirst, BodyStrategy::Incremental),
            (DedupMode::ValidateFirst, BodyStrategy::Incremental),
            (DedupMode::DedupFirst, BodyStrategy::Rebuild),
        ] {
            let options = EngineOptions {
                max_search_nodes: None,
                strategy,
                dedup_mode,
            };
            let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &options);
            for split_threshold in [None, Some(4)] {
                let mut config = ParConfig::new(3, 2);
                config.options = options;
                config.split_threshold = split_threshold;
                let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
                assert_identical(
                    &par,
                    &serial,
                    &format!("{dedup_mode:?}/{strategy:?}/split={split_threshold:?}"),
                );
            }
        }
    }

    #[test]
    fn sharded_merge_is_thread_count_invariant() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let options = EngineOptions::default();
        let run = |merge_threads: usize| {
            let outputs: Vec<TaskOutput> = initial_tasks(ctx.candidate_outputs().len(), 3)
                .iter()
                .map(|spec| run_task(&ctx, &constraints, &pruning, &options, None, spec).0)
                .collect();
            merge_tasks_sharded(&ctx, &options, outputs, merge_threads)
        };
        let serial_merge = run(1);
        for merge_threads in [2, 8] {
            assert_identical(
                &run(merge_threads),
                &serial_merge,
                &format!("merge threads={merge_threads}"),
            );
        }
    }

    #[test]
    fn manual_stage_pipeline_matches_the_bundled_entry_point() {
        // Drive split → run → merge directly, as the CLI's scheduler does.
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let options = EngineOptions::default();
        let ranges = task_ranges(ctx.candidate_outputs().len(), 2);
        let outputs: Vec<TaskOutput> = ranges
            .into_iter()
            .map(|r| run_root_task(&ctx, &constraints, &pruning, &options, r))
            .collect();
        assert!(outputs.iter().all(|o| o.stats().search_nodes > 0));
        let merged = merge_tasks(&ctx, &options, outputs);
        let mut config = ParConfig::new(2, 1);
        config.options = options;
        let bundled = parallel_cuts(&ctx, &constraints, &pruning, &config);
        assert_identical(&merged, &bundled, "manual vs bundled");
    }

    #[test]
    fn budgeted_tasks_are_deterministic_in_the_task_count() {
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let options = EngineOptions {
            max_search_nodes: Some(25),
            ..EngineOptions::default()
        };
        let mut reference = None;
        for threads in [1, 3] {
            let mut config = ParConfig::new(3, threads);
            config.options = options;
            let run = parallel_cuts(&ctx, &constraints, &pruning, &config);
            match &reference {
                None => reference = Some(run),
                Some(first) => assert_identical(&run, first, "budgeted determinism"),
            }
        }
    }

    #[test]
    fn budget_exhaustion_suppresses_splitting() {
        // A budget below the split threshold truncates tasks before they can split:
        // the run must behave exactly like the pre-splitting implementation.
        let ctx = cross_task_ctx();
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let options = EngineOptions {
            max_search_nodes: Some(10),
            ..EngineOptions::default()
        };
        let mut plain = ParConfig::new(2, 1);
        plain.options = options;
        let mut split = plain.clone();
        split.split_threshold = Some(10_000);
        let base = parallel_cuts_traced(&ctx, &constraints, &pruning, &plain);
        let with_split = parallel_cuts_traced(&ctx, &constraints, &pruning, &split);
        assert_identical(
            &with_split.enumeration,
            &base.enumeration,
            "budget wins over splitting",
        );
        assert_eq!(
            with_split.task_nodes.len(),
            base.task_nodes.len(),
            "no children under an exhausted budget"
        );
    }
}
