//! The result of an enumeration run.

use crate::cut::Cut;
use crate::stats::EnumStats;

/// Cuts found by an enumeration algorithm together with its search statistics.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{enumerate_cuts, Constraints};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let _x = b.node(Operation::Not, &[a]);
/// let result = enumerate_cuts(&b.build()?, &Constraints::new(2, 1)?)?;
/// assert_eq!(result.cuts.len(), result.stats.valid_cuts);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Enumeration {
    /// The distinct valid cuts, in the order they were discovered.
    pub cuts: Vec<Cut>,
    /// Search statistics for the run.
    pub stats: EnumStats,
}

impl Enumeration {
    /// Whether the run found no valid cut.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// Number of valid cuts found.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Sorts the cuts into a canonical order (by their packed body key, [`Cut::key`])
    /// so that results of different algorithms can be compared directly.
    pub fn canonicalize(&mut self) {
        self.cuts.sort_by(|a, b| a.key().cmp(&b.key()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Constraints;
    use crate::context::EnumContext;
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DfgBuilder, Operation};

    #[test]
    fn canonicalize_orders_by_key() {
        let mut b = DfgBuilder::new("bb");
        let a = b.input("a");
        let x = b.node(Operation::Not, &[a]);
        let _y = b.node(Operation::Add, &[x, a]);
        let ctx = EnumContext::new(b.build().unwrap());
        let mut result = exhaustive_cuts(&ctx, &Constraints::new(2, 2).unwrap(), true);
        assert!(!result.is_empty());
        assert_eq!(result.len(), result.cuts.len());
        result.canonicalize();
        let keys: Vec<_> = result.cuts.iter().map(Cut::key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
