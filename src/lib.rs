//! Umbrella crate for the reproduction of Bonzini & Pozzi, *Polynomial-Time Subgraph
//! Enumeration for Automated Instruction Set Extension* (DATE 2007).
//!
//! This crate re-exports the workspace members so that the examples under `examples/`
//! and the integration tests under `tests/` can exercise the whole public API from a
//! single dependency. Library users should normally depend on the individual crates:
//!
//! * [`ise_graph`] — data-flow graph substrate (§3 of the paper).
//! * [`ise_dominators`] — single- and multiple-vertex dominators (§2, §5.2).
//! * [`ise_enum`] — convex-cut enumeration, pruning, baseline and ISE selection (§4–5).
//! * [`ise_canon`] — canonical-form grouping of recurring candidates and
//!   corpus-level (global) ISE selection.
//! * [`ise_workloads`] — synthetic MiBench-like and tree-shaped workloads (§6).
//! * [`ise_corpus`] — the `.dfg` textual DFG interchange format and the standard
//!   corpus generator behind the committed `corpus/` directory.
//! * [`ise_cli`] — the `ise` batch driver: corpus loading, multi-threaded sharded
//!   enumeration/selection, JSON and markdown reporting.
//! * [`ise_obs`] — the std-only observability layer (counters, spans, Prometheus
//!   and Chrome-trace rendering) threaded through the engine, pool, memo and daemon.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ise_repro::ise_enum::{Constraints, enumerate_cuts};
//! use ise_repro::ise_workloads::tree::TreeDfgBuilder;
//!
//! let dfg = TreeDfgBuilder::new(3).build();
//! let cuts = enumerate_cuts(&dfg, &Constraints::new(2, 1)?)?;
//! assert!(!cuts.is_empty());
//! # Ok(())
//! # }
//! ```

pub use ise_canon;
pub use ise_cli;
pub use ise_corpus;
pub use ise_dominators;
pub use ise_enum;
pub use ise_graph;
pub use ise_obs;
pub use ise_workloads;
