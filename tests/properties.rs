//! Property-based tests (proptest) for the core invariants of the reproduction:
//! theorems 1–3 of the paper on randomly generated DAGs, agreement between the
//! polynomial enumeration and the brute-force oracle, and structural invariants of the
//! graph substrate.

use proptest::prelude::*;

use ise_canon::{canonicalize_cuts, canonicalize_cuts_memo, CanonMemo, GroupConfig};
use ise_dominators::multi::is_generalized_dominator;
use ise_dominators::{dominators, iterative_dominators, Forward, Reverse};
use ise_enum::{
    cone, exhaustive_cuts, incremental_cuts, incremental_cuts_with, BodyStrategy, Constraints, Cut,
    CutKey, EnumContext, PruningConfig,
};
use ise_graph::{DenseNodeSet, Dfg, NodeId, Operation, Reachability, RootedDfg};
use ise_workloads::expr::compile_block;
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_workloads::tree::{TreeDfgBuilder, TreeOrientation};

/// Decodes one of the 64 pruning configurations from a 6-bit mask, one bit per §5.3
/// technique.
fn pruning_from_mask(mask: u8) -> PruningConfig {
    PruningConfig {
        output_output: mask & 0x01 != 0,
        connectedness: mask & 0x02 != 0,
        build_s: mask & 0x04 != 0,
        output_input: mask & 0x08 != 0,
        input_input: mask & 0x10 != 0,
        dominator_input: mask & 0x20 != 0,
    }
}

fn sorted_keys(cuts: &[Cut]) -> Vec<CutKey<'_>> {
    let mut keys: Vec<_> = cuts.iter().map(Cut::key).collect();
    keys.sort();
    keys
}

/// Satellite of the engine refactor: on the Figure 4 worst-case trees (both
/// orientations) and a layered random DAG, the incremental engine must agree with the
/// brute-force oracle under *every* one of the 64 pruning combinations and under both
/// body strategies (maintained vs. rebuilt).
#[test]
fn every_pruning_combination_matches_the_oracle() {
    let graphs = vec![
        TreeDfgBuilder::new(3).build(),
        TreeDfgBuilder::new(3)
            .with_orientation(TreeOrientation::FanIn)
            .build(),
        random_dag(
            &RandomDagConfig::new(12)
                .with_live_ins(3)
                .with_memory_ratio(0.2),
            11,
        ),
    ];
    for dfg in graphs {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        for constraints in [
            Constraints::new(3, 2).unwrap(),
            Constraints::new(2, 2).unwrap().connected_only(true),
        ] {
            let oracle = exhaustive_cuts(&ctx, &constraints, true);
            let oracle_keys = sorted_keys(&oracle.cuts);
            for mask in 0u8..64 {
                let pruning = pruning_from_mask(mask);
                for strategy in [BodyStrategy::Incremental, BodyStrategy::Rebuild] {
                    let run = incremental_cuts_with(&ctx, &constraints, &pruning, None, strategy);
                    assert_eq!(
                        sorted_keys(&run.cuts),
                        oracle_keys,
                        "graph `{name}`, pruning mask {mask:#08b}, {strategy:?}, \
                         connected={}",
                        constraints.is_connected_only()
                    );
                }
            }
        }
    }
}

/// Satellite of the memoized-canonicalization PR: coding cuts through a shared
/// [`CanonMemo`] is observably pure. On every workload family the repository
/// generates — fan-out and fan-in trees, layered random DAGs, MiBench-like
/// blocks and compiled straight-line snippets — the memoized coding (both the
/// cold first sweep and the warm second sweep, with the memo shared across all
/// families) equals the plain labeler's output element for element.
#[test]
fn memoized_coding_matches_plain_on_every_workload_family() {
    let graphs = vec![
        TreeDfgBuilder::new(3).build(),
        TreeDfgBuilder::new(3)
            .with_orientation(TreeOrientation::FanIn)
            .build(),
        random_dag(
            &RandomDagConfig::new(24)
                .with_live_ins(3)
                .with_memory_ratio(0.15),
            7,
        ),
        generate_block(&MiBenchLikeConfig::new(24), 3).expect("mibench-like block builds"),
        compile_block(
            "sad",
            "d = a - b; m = d >> 31; abs = (d ^ m) - m; acc2 = acc + abs; out acc2;",
        )
        .expect("snippet compiles"),
    ];
    let constraints = Constraints::new(4, 2).unwrap();
    let config = GroupConfig::default();
    let memo = CanonMemo::new();
    let mut total_cuts = 0u64;
    for dfg in graphs {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        let cuts = incremental_cuts(&ctx, &constraints, &PruningConfig::all()).cuts;
        total_cuts += cuts.len() as u64;
        let plain = canonicalize_cuts(&ctx, &cuts, &config);
        let cold = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        assert_eq!(plain, cold, "cold memoized coding diverges on `{name}`");
        let warm = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        assert_eq!(plain, warm, "warm memoized coding diverges on `{name}`");
    }
    let stats = memo.stats();
    assert!(
        stats.labeler_runs < total_cuts,
        "the shared memo must label fewer graphs ({}) than there are cuts ({total_cuts})",
        stats.labeler_runs,
    );
    assert!(stats.raw_hits > 0, "the warm sweeps must hit the memo");
}

/// Strategy: a small random DAG described as, for each non-root node, a list of
/// predecessor indices among the earlier nodes, plus an operation selector.
fn small_dag_strategy() -> impl Strategy<Value = Dfg> {
    let node_count = 4usize..14;
    node_count
        .prop_flat_map(|n| {
            let preds =
                proptest::collection::vec((proptest::collection::vec(0usize..n, 1..3), 0u8..10), n);
            (Just(n), preds)
        })
        .prop_map(|(n, specs)| {
            let mut ops = Vec::with_capacity(n + 2);
            let mut edges = Vec::new();
            // Two guaranteed live-in roots.
            ops.push(Operation::Input);
            ops.push(Operation::Input);
            for (i, (preds, op_roll)) in specs.into_iter().enumerate() {
                let id = i + 2;
                let op = match op_roll {
                    0 => Operation::Load,
                    1 => Operation::Mul,
                    2 => Operation::Shl,
                    3 => Operation::Sub,
                    4 => Operation::Xor,
                    5 => Operation::Cmp,
                    _ => Operation::Add,
                };
                ops.push(op);
                let mut used = Vec::new();
                for p in preds {
                    let p = p % id; // only earlier nodes, keeps the graph acyclic
                    if !used.contains(&p) {
                        used.push(p);
                        edges.push((NodeId::from_index(p), NodeId::from_index(id)));
                    }
                }
            }
            Dfg::from_edges("proptest", ops, edges, [], []).expect("construction is acyclic")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The polynomial enumeration finds exactly the cuts the brute-force oracle finds.
    #[test]
    fn incremental_matches_oracle(dfg in small_dag_strategy()) {
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        let poly = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let mut a: Vec<_> = oracle.cuts.iter().map(Cut::key).collect();
        let mut b: Vec<_> = poly.cuts.iter().map(Cut::key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// The engine agrees with the oracle on random DAGs under randomly drawn pruning
    /// combinations and both body strategies.
    #[test]
    fn incremental_matches_oracle_under_random_pruning(
        dfg in small_dag_strategy(),
        mask in 0u8..64,
    ) {
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        let pruning = pruning_from_mask(mask);
        for strategy in [BodyStrategy::Incremental, BodyStrategy::Rebuild] {
            let run = incremental_cuts_with(&ctx, &constraints, &pruning, None, strategy);
            prop_assert_eq!(
                sorted_keys(&run.cuts),
                sorted_keys(&oracle.cuts),
                "mask {:#08b}, {:?}",
                mask,
                strategy
            );
        }
    }

    /// Theorem 1: the inputs of every valid single-output cut form a generalized
    /// dominator of its output; Theorem 2/3: the cut is reconstructed exactly from its
    /// inputs and outputs by the backward closure.
    #[test]
    fn theorems_hold_for_enumerated_cuts(dfg in small_dag_strategy()) {
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        let result = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        for cut in &result.cuts {
            // Reconstruction (Theorems 2/3).
            let inputs = DenseNodeSet::from_nodes(
                ctx.rooted().num_nodes(),
                cut.inputs().iter().copied(),
            );
            let rebuilt = cone(ctx.rooted(), &inputs, cut.outputs(), false)
                .expect("no abort requested");
            prop_assert_eq!(&rebuilt, cut.body());
            // Theorem 1 for single-output cuts.
            if cut.outputs().len() == 1 {
                prop_assert!(is_generalized_dominator(
                    &Forward(ctx.rooted()),
                    cut.inputs(),
                    cut.outputs()[0],
                ));
            }
        }
    }

    /// Every cut the enumeration reports is convex and within the port budget.
    #[test]
    fn enumerated_cuts_are_valid(dfg in small_dag_strategy()) {
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(4, 2).unwrap();
        let result = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        for cut in &result.cuts {
            prop_assert!(cut.validate(&ctx, &constraints, true).is_ok());
        }
    }

    /// Memoized canonical coding is observably pure on arbitrary DAGs: the plain
    /// labeler, a cold memo and a warm memo produce identical codings.
    #[test]
    fn memoized_coding_is_observably_pure(dfg in small_dag_strategy()) {
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        let cuts = incremental_cuts(&ctx, &constraints, &PruningConfig::all()).cuts;
        let config = GroupConfig::default();
        let plain = canonicalize_cuts(&ctx, &cuts, &config);
        let memo = CanonMemo::new();
        let cold = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        let warm = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        prop_assert_eq!(&plain, &cold);
        prop_assert_eq!(&plain, &warm);
        prop_assert!(memo.stats().labeler_runs <= cuts.len() as u64);
    }

    /// Lengauer–Tarjan and the iterative algorithm agree on dominators and
    /// postdominators.
    #[test]
    fn dominator_engines_agree(dfg in small_dag_strategy()) {
        let rooted = RootedDfg::new(dfg);
        let lt = dominators(&Forward(&rooted));
        let it = iterative_dominators(&Forward(&rooted));
        for v in rooted.node_ids() {
            prop_assert_eq!(lt.idom(v), it.idom(v));
        }
        let ltp = dominators(&Reverse(&rooted));
        let itp = iterative_dominators(&Reverse(&rooted));
        for v in rooted.node_ids() {
            prop_assert_eq!(ltp.idom(v), itp.idom(v));
        }
    }

    /// The reachability matrix agrees with a straightforward DFS, and dominance implies
    /// reachability.
    #[test]
    fn reachability_is_consistent(dfg in small_dag_strategy()) {
        let rooted = RootedDfg::new(dfg);
        let reach = Reachability::compute(&rooted);
        let dom = dominators(&Forward(&rooted));
        for v in rooted.node_ids() {
            // DFS from v.
            let mut visited = rooted.node_set();
            let mut stack = vec![v];
            while let Some(x) = stack.pop() {
                for &s in rooted.succs(x) {
                    if visited.insert(s) {
                        stack.push(s);
                    }
                }
            }
            for w in rooted.node_ids() {
                prop_assert_eq!(reach.reaches(v, w), visited.contains(w), "{} -> {}", v, w);
            }
            // Strict dominance implies reachability.
            if let Some(idom) = dom.idom(v) {
                prop_assert!(reach.reaches(idom, v));
            }
        }
    }

    /// The dense bit set behaves like a reference set implementation.
    #[test]
    fn bitset_behaves_like_a_set(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..100)) {
        use std::collections::BTreeSet;
        let mut dense = DenseNodeSet::new(64);
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        for (index, insert) in ops {
            let node = NodeId::from_index(index);
            if insert {
                prop_assert_eq!(dense.insert(node), reference.insert(index));
            } else {
                prop_assert_eq!(dense.remove(node), reference.remove(&index));
            }
        }
        prop_assert_eq!(dense.len(), reference.len());
        let dense_items: Vec<usize> = dense.iter().map(|n| n.index()).collect();
        let reference_items: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(dense_items, reference_items);
    }
}
