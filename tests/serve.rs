//! Integration tests for the `ise serve` daemon: the LRU capacity invariant under
//! arbitrary operation sequences (property-tested), byte-identical recomputation
//! after eviction, and the cache-key canonicalization regression — formatting-only
//! block variants must share a key while any flag change must miss.
//!
//! These drive the daemon through its public surface ([`ise_cli::serve::ServerState`]
//! and [`ise_cli::cache::LruCache`]); the protocol-level cold/warm byte-identity and
//! in-band error handling are unit-tested next to the implementation.

use proptest::prelude::*;

use ise_cli::cache::LruCache;
use ise_cli::serve::ServerState;

/// A tiny multiply-accumulate block; `{n}` is replaced to mint distinct blocks.
const TINY: &str = "dfg tiny{n}\nnode 0 in @a\nnode 1 in @x\nnode 2 in @acc\n\
                    node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\n\
                    output 4\nend\n";

fn tiny_block(n: usize) -> String {
    TINY.replace("{n}", &n.to_string())
}

/// Builds one request line, JSON-escaping the inline block text.
fn request(op: &str, block: &str, flags: &str) -> String {
    let escaped = block.replace('\n', "\\n");
    format!("{{\"op\":\"{op}\",\"block\":\"{escaped}\",\"flags\":{{{flags}}}}}")
}

/// The 32-hex content key of an `ok:true` response envelope.
fn key_of(response: &str) -> &str {
    let start = response.find("\"key\":\"").expect("key field") + "\"key\":\"".len();
    &response[start..start + 32]
}

/// The raw `result` payload bytes of an `ok:true` response envelope.
fn payload_of(response: &str) -> &str {
    let start = response.find("\"result\":").expect("result field") + "\"result\":".len();
    &response[start..response.len() - 1]
}

/// Every `"entries":N` counter in a `stats` response (one per cache).
fn entry_counts(stats_response: &str) -> Vec<usize> {
    stats_response
        .match_indices("\"entries\":")
        .map(|(at, needle)| {
            stats_response[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("entries counter")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LRU bound is a hard invariant: whatever the sequence of puts and gets,
    /// the cache never holds more than its capacity (including capacity 0, the
    /// `--cache-cap 0` off switch), and a just-inserted key is always readable
    /// back at its latest value when the cache stores anything at all.
    #[test]
    fn lru_never_exceeds_its_capacity(
        cap in 0usize..5,
        ops in proptest::collection::vec((0usize..8, any::<bool>()), 1..48),
    ) {
        let mut cache = LruCache::new(cap);
        let mut serial = 0u32;
        for (slot, is_put) in ops {
            let key = format!("k{slot}");
            if is_put {
                serial += 1;
                cache.put(&key, serial);
                if cap > 0 {
                    prop_assert_eq!(cache.get(&key), Some(&serial), "fresh insert readable");
                }
            } else {
                let _ = cache.get(&key);
            }
            prop_assert!(
                cache.len() <= cap,
                "cache holds {} entries with cap {cap}",
                cache.len()
            );
        }
        let stats = cache.stats();
        prop_assert!(stats.evictions <= stats.puts, "cannot evict more than was put");
    }

    /// Under a single-entry response cache, rotating through three distinct blocks
    /// evicts on every request — and every recomputation after eviction must be
    /// byte-identical to the first answer for that block. The daemon's own caches
    /// must also respect the capacity at every step.
    #[test]
    fn eviction_and_requery_stay_byte_identical(seq in proptest::collection::vec(0usize..3, 1..12)) {
        let state = ServerState::new(1, None);
        let blocks = [tiny_block(0), tiny_block(1), tiny_block(2)];
        let mut first_payload: [Option<String>; 3] = [None, None, None];
        for index in seq {
            let response = state.handle_line(&request("enumerate", &blocks[index], "\"budget\":5000"));
            prop_assert!(response.starts_with("{\"ok\":true"), "{}", response);
            let payload = payload_of(&response).to_string();
            match &first_payload[index] {
                Some(first) => prop_assert_eq!(
                    first,
                    &payload,
                    "block {} recomputed differently after eviction",
                    index
                ),
                None => first_payload[index] = Some(payload),
            }
            let stats = state.handle_line("{\"op\":\"stats\"}");
            for entries in entry_counts(&stats) {
                prop_assert!(entries <= 1, "a cache exceeded --cache-cap 1: {}", stats);
            }
        }
    }
}

/// Regression: the cache key is derived from *canonical* block bytes, so comments,
/// blank lines and horizontal whitespace must not change it — while any semantic
/// flag change must produce a different key and therefore a cold miss.
#[test]
fn formatting_invariant_keys_and_flag_sensitive_misses() {
    let state = ServerState::new(8, None);
    let clean = tiny_block(9);
    let noisy = format!(
        "# leading comment\n\n{}",
        clean.replace("node 3 mul", "node   3   mul")
    );

    let cold = state.handle_line(&request("enumerate", &clean, "\"budget\":5000"));
    let noisy_warm = state.handle_line(&request("enumerate", &noisy, "\"budget\":5000"));
    assert_eq!(
        key_of(&cold),
        key_of(&noisy_warm),
        "formatting-only variants must share a cache key"
    );
    assert!(cold.contains("\"cached\":false"), "{cold}");
    assert!(
        noisy_warm.contains("\"cached\":true"),
        "the noisy variant must hit the clean variant's entry: {noisy_warm}"
    );
    assert_eq!(
        payload_of(&cold),
        payload_of(&noisy_warm),
        "shared key must replay byte-identical payload"
    );

    for flags in [
        "\"budget\":4999",
        "\"budget\":5000,\"nin\":3",
        "\"budget\":5000,\"nout\":1",
        "\"budget\":5000,\"dedup-mode\":\"validate-first\"",
    ] {
        let changed = state.handle_line(&request("enumerate", &clean, flags));
        assert!(changed.starts_with("{\"ok\":true"), "{changed}");
        assert_ne!(
            key_of(&cold),
            key_of(&changed),
            "flag change {flags} must change the cache key"
        );
        assert!(
            changed.contains("\"cached\":false"),
            "flag change {flags} must miss: {changed}"
        );
    }
}
