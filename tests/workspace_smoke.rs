//! Workspace-level smoke test: the umbrella crate's front-door example must hold end
//! to end — a tree-shaped DFG flows through `enumerate_cuts`, yields a non-empty set
//! of convex, constraint-respecting cuts, and the polynomial engine agrees with the
//! brute-force oracle on small graphs. This is the cheap cross-crate check CI runs on
//! every push; the exhaustive cross-algorithm comparison lives in
//! `cross_algorithm_agreement.rs`.

use ise_enum::{
    enumerate_cuts, exhaustive_cuts, incremental_cuts, Constraints, Cut, EnumContext, PruningConfig,
};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_workloads::tree::TreeDfgBuilder;

/// The umbrella doctest scenario, pinned as a compiled test: tree DFG in,
/// valid cuts out.
#[test]
fn tree_dfg_yields_valid_cuts() {
    let dfg = TreeDfgBuilder::new(3).build();
    let constraints = Constraints::new(2, 1).expect("non-zero constraints");
    let result = enumerate_cuts(&dfg, &constraints).expect("enumeration succeeds");
    assert!(!result.cuts.is_empty(), "a depth-3 tree has candidate cuts");

    let ctx = EnumContext::new(dfg);
    for cut in &result.cuts {
        assert!(cut.is_convex(&ctx), "cut {:?} is not convex", cut.key());
        assert!(
            cut.inputs().len() <= constraints.max_inputs(),
            "cut {:?} exceeds Nin",
            cut.key()
        );
        assert!(
            cut.outputs().len() <= constraints.max_outputs(),
            "cut {:?} exceeds Nout",
            cut.key()
        );
        assert!(cut.validate(&ctx, &constraints, true).is_ok());
    }
}

fn sorted_keys(cuts: &[Cut]) -> Vec<ise_enum::CutKey<'_>> {
    let mut keys: Vec<_> = cuts.iter().map(Cut::key).collect();
    keys.sort();
    keys
}

/// `incremental_cuts` and `exhaustive_cuts` must agree cut-for-cut on graphs small
/// enough for the brute-force oracle.
#[test]
fn incremental_agrees_with_exhaustive_on_small_graphs() {
    let constraints = Constraints::new(3, 2).expect("non-zero constraints");
    let mut graphs = vec![
        TreeDfgBuilder::new(2).build(),
        TreeDfgBuilder::new(3).build(),
    ];
    for seed in 0..4 {
        graphs.push(random_dag(
            &RandomDagConfig::new(10)
                .with_live_ins(3)
                .with_layer_width(3),
            seed,
        ));
    }

    for dfg in graphs {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        let poly = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        assert_eq!(
            sorted_keys(&oracle.cuts),
            sorted_keys(&poly.cuts),
            "incremental and exhaustive enumeration disagree on `{name}`"
        );
        assert!(
            !poly.cuts.is_empty(),
            "every test graph has at least one candidate (got none on `{name}`)"
        );
    }
}
