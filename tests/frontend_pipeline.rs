//! End-to-end pipeline tests: straight-line source code in, selected custom
//! instructions and DOT renderings out, exercising every crate of the workspace through
//! its public API only.

use ise_enum::{enumerate_cuts, estimate_merit, select_ises, Constraints, EnumContext};
use ise_graph::{DotOptions, LatencyModel, Operation};
use ise_workloads::expr::compile_block;
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};

#[test]
fn sad_kernel_yields_a_profitable_multi_operation_instruction() {
    let dfg = compile_block(
        "sad",
        "d = a - b; m = d >> 31; abs = (d ^ m) - m; acc2 = acc + abs; out acc2;",
    )
    .expect("kernel compiles");
    let constraints = Constraints::new(4, 1).expect("valid constraints");
    let result = enumerate_cuts(&dfg, &constraints).expect("enumeration succeeds");
    assert!(!result.cuts.is_empty());

    let ctx = EnumContext::new(dfg);
    let model = LatencyModel::default();
    let best = result
        .cuts
        .iter()
        .map(|cut| (cut, estimate_merit(&ctx, cut, &model, 4, 1)))
        .max_by_key(|(_, merit)| merit.saved_cycles)
        .expect("at least one candidate");
    assert!(
        best.0.len() >= 3,
        "the absolute-difference cluster should be a candidate"
    );
    assert!(
        best.1.saved_cycles >= 1,
        "merging ALU operations must save cycles"
    );
}

#[test]
fn memory_bound_kernel_is_partitioned_by_forbidden_nodes() {
    let dfg = compile_block(
        "memcpy-ish",
        "v = load(src); w = v ^ k; store(dst, w); v2 = load(src + 4); w2 = v2 ^ k; store(dst + 4, w2);",
    )
    .expect("kernel compiles");
    let constraints = Constraints::new(4, 2).expect("valid constraints");
    let result = enumerate_cuts(&dfg, &constraints).expect("enumeration succeeds");
    // Loads and stores may never be members of a candidate.
    for cut in &result.cuts {
        for node in cut.body().iter() {
            assert!(!dfg.op(node).is_memory());
        }
    }
    // The xor operations are still found (possibly merged with the address adds).
    assert!(result
        .cuts
        .iter()
        .any(|cut| { cut.body().iter().any(|node| dfg.op(node) == Operation::Xor) }));
}

#[test]
fn selection_on_a_generated_block_is_consistent() {
    let dfg = generate_block(&MiBenchLikeConfig::new(60), 99).expect("valid block");
    let ctx = EnumContext::new(dfg.clone());
    let constraints = Constraints::new(4, 2).expect("valid constraints");
    let result = enumerate_cuts(&dfg, &constraints).expect("enumeration succeeds");
    let selection = select_ises(&ctx, &result.cuts, &LatencyModel::default(), 4, 2, 8);
    // Selected instructions never overlap and never exceed the requested count.
    assert!(selection.chosen.len() <= 8);
    for (i, (a, _)) in selection.chosen.iter().enumerate() {
        for (b, _) in &selection.chosen[i + 1..] {
            assert!(a.body().is_disjoint(b.body()));
        }
    }
    // The estimated speedup is at least 1 and finite.
    let speedup = selection.block_speedup();
    assert!(speedup >= 1.0 && speedup.is_finite());
    // Every selected instruction can be rendered for documentation.
    for (cut, _) in &selection.chosen {
        let dot = DotOptions::new().with_cut(cut.body().clone()).render(&dfg);
        assert!(dot.starts_with("digraph"));
    }
}

#[test]
fn connected_and_depth_limited_searches_restrict_candidates() {
    let dfg = compile_block(
        "arx",
        "t1 = a + b; t2 = t1 ^ (c << 7); t3 = t2 + c; t4 = t3 ^ (t1 >> 3); out t4;",
    )
    .expect("kernel compiles");
    let ctx = EnumContext::new(dfg.clone());
    let free = Constraints::new(4, 2).expect("valid constraints");
    let all = enumerate_cuts(&dfg, &free).expect("enumeration succeeds");

    let shallow = free.clone().with_max_depth(1);
    let shallow_cuts = enumerate_cuts(&dfg, &shallow).expect("enumeration succeeds");
    assert!(shallow_cuts.cuts.len() < all.cuts.len());
    assert!(shallow_cuts.cuts.iter().all(|c| c.depth(&ctx) <= 1));

    let connected = free.connected_only(true);
    let connected_cuts = enumerate_cuts(&dfg, &connected).expect("enumeration succeeds");
    assert!(connected_cuts.cuts.len() <= all.cuts.len());
    assert!(connected_cuts.cuts.iter().all(|c| c.is_connected(&ctx)));
}
