//! Cross-crate integration tests: the three enumeration algorithms (incremental,
//! basic/reference, pruned exhaustive baseline) and the brute-force oracle must agree
//! on what the valid cuts of a basic block are, across workloads produced by every
//! generator in the workspace.

use std::collections::HashSet;

use ise_enum::{
    baseline_cuts, basic_cuts, exhaustive_cuts, incremental_cuts, incremental_cuts_with,
    BodyStrategy, Constraints, Cut, CutKey, EnumContext, PruningConfig,
};
use ise_workloads::expr::compile_block;
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_workloads::tree::{TreeDfgBuilder, TreeOrientation};

fn keys(cuts: &[Cut]) -> Vec<CutKey<'_>> {
    let mut keys: Vec<CutKey<'_>> = cuts.iter().map(Cut::key).collect();
    keys.sort();
    keys
}

/// Small contexts drawn from every workload generator (kept below the exhaustive
/// oracle's subset limit).
fn small_contexts() -> Vec<(String, EnumContext)> {
    let mut out = Vec::new();
    out.push((
        "expr".to_string(),
        EnumContext::new(
            compile_block(
                "expr",
                "t = a + b; u = t ^ c; v = load(p); w = u + v; x = w - t; out x;",
            )
            .expect("snippet compiles"),
        ),
    ));
    out.push((
        "tree-fanout".to_string(),
        EnumContext::new(TreeDfgBuilder::new(3).build()),
    ));
    out.push((
        "tree-fanin".to_string(),
        EnumContext::new(
            TreeDfgBuilder::new(3)
                .with_orientation(TreeOrientation::FanIn)
                .build(),
        ),
    ));
    for seed in 0..4u64 {
        let dfg = random_dag(
            &RandomDagConfig::new(18)
                .with_live_ins(4)
                .with_memory_ratio(0.2),
            seed,
        );
        out.push((format!("random-{seed}"), EnumContext::new(dfg)));
    }
    for seed in 0..3u64 {
        let dfg = generate_block(&MiBenchLikeConfig::new(26), seed).expect("valid block");
        out.push((format!("mibench-{seed}"), EnumContext::new(dfg)));
    }
    out
}

#[test]
fn incremental_and_basic_match_the_oracle() {
    for (name, ctx) in small_contexts() {
        if ctx.candidate_outputs().len() > 22 {
            continue; // keep the exhaustive oracle tractable
        }
        for (nin, nout) in [(2, 1), (4, 2), (3, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let oracle = exhaustive_cuts(&ctx, &constraints, true);
            let incremental = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
            let basic = basic_cuts(&ctx, &constraints);
            assert_eq!(
                keys(&incremental.cuts),
                keys(&oracle.cuts),
                "incremental vs oracle on {name}, Nin={nin}, Nout={nout}"
            );
            assert_eq!(
                keys(&basic.cuts),
                keys(&oracle.cuts),
                "basic vs oracle on {name}, Nin={nin}, Nout={nout}"
            );
        }
    }
}

#[test]
fn baseline_matches_the_relaxed_oracle_and_covers_the_polynomial_results() {
    for (name, ctx) in small_contexts() {
        if ctx.candidate_outputs().len() > 20 {
            continue;
        }
        let constraints = Constraints::new(4, 2).unwrap();
        let baseline = baseline_cuts(&ctx, &constraints);
        let relaxed_oracle = exhaustive_cuts(&ctx, &constraints, false);
        assert_eq!(
            keys(&baseline.cuts),
            keys(&relaxed_oracle.cuts),
            "baseline vs relaxed oracle on {name}"
        );
        let poly = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let baseline_keys: HashSet<CutKey<'_>> = baseline.cuts.iter().map(Cut::key).collect();
        for cut in &poly.cuts {
            assert!(
                baseline_keys.contains(&cut.key()),
                "cut missing from baseline on {name}: {cut:?}"
            );
        }
    }
}

#[test]
fn rebuild_strategy_agrees_with_the_incremental_engine() {
    // The engine's incrementally maintained body and the legacy rebuild-per-CHECK-CUT
    // pipeline must enumerate exactly the same cuts on every workload shape.
    for (name, ctx) in small_contexts() {
        for (nin, nout) in [(3, 1), (4, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let engine = incremental_cuts_with(
                &ctx,
                &constraints,
                &PruningConfig::all(),
                None,
                BodyStrategy::Incremental,
            );
            let rebuild = incremental_cuts_with(
                &ctx,
                &constraints,
                &PruningConfig::all(),
                None,
                BodyStrategy::Rebuild,
            );
            assert_eq!(
                keys(&engine.cuts),
                keys(&rebuild.cuts),
                "strategies disagree on {name}, Nin={nin}, Nout={nout}"
            );
            assert_eq!(engine.stats.valid_cuts, rebuild.stats.valid_cuts);
        }
    }
}

#[test]
fn pruning_never_changes_the_result_set() {
    for (name, ctx) in small_contexts() {
        let constraints = Constraints::new(3, 2).unwrap();
        let reference = incremental_cuts(&ctx, &constraints, &PruningConfig::none());
        for &technique in PruningConfig::technique_names() {
            let pruned =
                incremental_cuts(&ctx, &constraints, &PruningConfig::all_except(technique));
            assert_eq!(
                keys(&pruned.cuts),
                keys(&reference.cuts),
                "pruning configuration without {technique} changed the cuts on {name}"
            );
        }
        let all = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        assert_eq!(
            keys(&all.cuts),
            keys(&reference.cuts),
            "all prunings on {name}"
        );
        assert!(all.stats.search_nodes <= reference.stats.search_nodes);
    }
}

#[test]
fn every_enumerated_cut_satisfies_the_definitions() {
    for (name, ctx) in small_contexts() {
        let constraints = Constraints::new(4, 2).unwrap();
        let result = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        for cut in &result.cuts {
            assert!(cut.is_convex(&ctx), "{name}: non-convex cut {cut:?}");
            assert!(cut.inputs().len() <= 4, "{name}: too many inputs");
            assert!(cut.outputs().len() <= 2, "{name}: too many outputs");
            assert!(
                cut.io_condition_violation(&ctx).is_none(),
                "{name}: technical condition violated"
            );
            assert!(
                cut.body().iter().all(|v| !ctx.rooted().is_forbidden(v)),
                "{name}: forbidden vertex in cut"
            );
        }
    }
}

#[test]
fn connected_only_results_are_a_subset() {
    for (name, ctx) in small_contexts() {
        let free = Constraints::new(4, 2).unwrap();
        let connected = free.clone().connected_only(true);
        let all = incremental_cuts(&ctx, &free, &PruningConfig::all());
        let only_connected = incremental_cuts(&ctx, &connected, &PruningConfig::all());
        let all_keys: HashSet<CutKey<'_>> = all.cuts.iter().map(Cut::key).collect();
        assert!(
            only_connected
                .cuts
                .iter()
                .all(|c| all_keys.contains(&c.key())),
            "connected-only produced a cut the unconstrained run did not, on {name}"
        );
        assert!(only_connected.cuts.iter().all(|c| c.is_connected(&ctx)));
    }
}
