//! End-to-end checks of canonical-form grouping against the committed `corpus/`
//! directory (the ISSUE 5 acceptance criteria, on a reduced search budget so the
//! debug-mode test stays fast; the criteria were additionally verified at the
//! default budget with the release binary, see DESIGN.md E8):
//!
//! * `ise group` finds patterns recurring in *distinct* blocks;
//! * grouping output is byte-identical for any thread count (wall times aside),
//!   with canonicalization memoized or not, and with one shared memo serving
//!   every thread count in sequence (the ISSUE 7 purity criterion);
//! * `ise select --global` saves at least as many corpus-wide cycles as the sum of
//!   the per-block greedy selections under the same constraints.

use std::time::Duration;

use ise_repro::ise_canon::{select_ises_global, CanonMemo, GroupConfig};
use ise_repro::ise_cli::batch::{run_batch, BatchConfig, SelectionConfig};
use ise_repro::ise_cli::group::{group_json, group_outcomes};
use ise_repro::ise_cli::report::RunMeta;
use ise_repro::ise_corpus::{load_corpus_path, CorpusBlock};
use ise_repro::ise_enum::{Constraints, Cut, DedupMode};

const BUDGET: usize = 10_000;

fn committed_corpus() -> Vec<CorpusBlock> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    load_corpus_path(dir).expect("the committed corpus/ directory validates")
}

fn config(threads: usize) -> BatchConfig {
    BatchConfig {
        threads,
        budget: Some(BUDGET),
        ..BatchConfig::new(Constraints::new(4, 2).unwrap())
    }
}

/// Acceptance: on the committed 20-block corpus at least one pattern recurs in
/// distinct blocks — the whole point of grouping.
#[test]
fn committed_corpus_has_cross_block_recurring_patterns() {
    let blocks = committed_corpus();
    let outcomes = run_batch(&blocks, &config(2));
    let index = group_outcomes(&blocks, &outcomes, &GroupConfig::default(), 2, None);
    let cross_block = index
        .entries()
        .iter()
        .filter(|e| e.static_count() >= 2 && e.distinct_blocks() >= 2)
        .count();
    assert!(
        cross_block >= 1,
        "expected recurring cross-block patterns, found none among {} patterns",
        index.len()
    );
    // Sanity of the aggregates the `ise group` report is built from.
    assert_eq!(index.num_blocks(), blocks.len());
    assert_eq!(
        index.total_cuts(),
        outcomes
            .iter()
            .map(|o| o.enumeration.cuts.len())
            .sum::<usize>()
    );
}

/// Acceptance: the grouping report is byte-identical for any `--threads` value
/// once wall times are stripped — with canonicalization memoized or not, and
/// with one *shared* memo serving every thread count in sequence (so later
/// renders run entirely on warm memo hits yet produce the same bytes).
#[test]
fn grouping_report_is_thread_count_and_memo_invariant() {
    let blocks = committed_corpus();
    let meta = |threads| RunMeta {
        corpus: "corpus".into(),
        nin: 4,
        nout: 2,
        threads,
        budget: Some(BUDGET),
        par_threshold: 64,
        split_threshold: Some(ise_repro::ise_cli::batch::DEFAULT_SPLIT_THRESHOLD),
        dedup_mode: DedupMode::DedupFirst,
        select: false,
        elapsed: Duration::ZERO,
    };
    let render = |threads: usize, memo: Option<&CanonMemo>| {
        let outcomes = run_batch(&blocks, &config(threads));
        let index = group_outcomes(&blocks, &outcomes, &GroupConfig::default(), threads, memo);
        group_json(&index, &outcomes, &meta(threads), 1, None).render()
    };
    let strip = |s: &str| {
        s.split(',')
            .filter(|f| !f.contains("_seconds") && !f.contains("\"threads\""))
            .collect::<Vec<_>>()
            .join(",")
    };
    let plain = strip(&render(1, None));
    assert_eq!(plain, strip(&render(4, None)));
    let memo = CanonMemo::new();
    for threads in [1, 2, 4] {
        assert_eq!(
            plain,
            strip(&render(threads, Some(&memo))),
            "memoized grouping at {threads} threads diverged"
        );
    }
    assert!(
        memo.stats().raw_hits > 0,
        "the second and third memoized renders must hit the shared memo"
    );
}

/// Acceptance: corpus-level selection must not lose to per-block greedy under the
/// same constraints — crediting recurrence can only help.
#[test]
fn global_selection_beats_the_per_block_sum_on_the_committed_corpus() {
    let blocks = committed_corpus();

    let mut per_block_config = config(2);
    per_block_config.select = Some(SelectionConfig {
        max_instructions: 4,
        ports_in: 4,
        ports_out: 2,
    });
    let per_block = run_batch(&blocks, &per_block_config);
    let per_block_total: u64 = per_block
        .iter()
        .filter_map(|o| o.selection.as_ref())
        .map(|s| u64::from(s.total_saved_cycles))
        .sum();
    assert!(per_block_total > 0, "the corpus has profitable candidates");

    let outcomes = run_batch(&blocks, &config(2));
    let index = group_outcomes(&blocks, &outcomes, &GroupConfig::default(), 2, None);
    let views: Vec<&[Cut]> = outcomes
        .iter()
        .map(|o| o.enumeration.cuts.as_slice())
        .collect();
    let global = select_ises_global(&index, &views, 0);
    assert!(
        global.total_saved_cycles >= per_block_total,
        "global {} < per-block sum {per_block_total}",
        global.total_saved_cycles
    );
}
