//! Concurrency harness for the `ise serve` daemon's shared state: many threads
//! hammer one [`ServerState`] with a shuffled mix of cold, warm, inline and
//! malformed requests, and every response must be byte-identical to a
//! single-threaded serial replay — the serve-side analogue of
//! `tests/par_equivalence.rs`. Also pins the single-flight guarantee (N
//! concurrent cold requests for one key run exactly one computation) and the
//! server-counter consistency invariant (`hits + misses + errors == requests`).
//!
//! These tests drive the daemon in-process over `Arc<ServerState>`; the
//! process-level harness (TCP clients, HTTP, SIGTERM) lives in
//! `crates/ise-cli/tests/serve_daemon.rs`.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use ise_cli::serve::ServerState;

/// A tiny multiply-accumulate block; `{n}` is replaced to mint distinct blocks.
const TINY: &str = "dfg tiny{n}\nnode 0 in @a\nnode 1 in @x\nnode 2 in @acc\n\
                    node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\n\
                    output 4\nend\n";

fn tiny_block(n: usize) -> String {
    TINY.replace("{n}", &n.to_string())
}

/// Builds one request line, JSON-escaping the inline block text.
fn request(op: &str, block: &str, flags: &str) -> String {
    let escaped = block.replace('\n', "\\n");
    format!("{{\"op\":\"{op}\",\"block\":\"{escaped}\",\"flags\":{{{flags}}}}}")
}

/// The deterministic part of a response: for `ok:true` envelopes the content key
/// plus the raw `result` payload bytes (everything except the volatile `cached`
/// and `elapsed_ms` facts); for errors the whole line (errors carry nothing
/// volatile). This is the Rust-side equivalent of `ci/strip-volatile.sh`.
fn stripped(response: &str) -> String {
    if !response.starts_with("{\"ok\":true") {
        return response.to_string();
    }
    let key_at = response.find("\"key\":\"").expect("key field") + "\"key\":\"".len();
    let key = &response[key_at..key_at + 32];
    let payload_at = response.find("\"result\":").expect("result field") + "\"result\":".len();
    format!("{key}:{}", &response[payload_at..response.len() - 1])
}

/// A u64 counter out of the `"server"` object of a `stats` response.
fn server_counter(stats_response: &str, field: &str) -> u64 {
    let server_at = stats_response
        .find("\"server\":{")
        .expect("stats reports a server object");
    let tail = &stats_response[server_at..];
    let needle = format!("\"{field}\":");
    let at = tail.find(&needle).expect("server counter present") + needle.len();
    tail[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter is a number")
}

/// The workload: cold keys, duplicates that warm up mid-run, an op mix over the
/// same blocks (distinct keys, shared enumeration layer) and malformed lines
/// that must answer in-band errors without poisoning anything.
fn mixed_workload() -> Vec<String> {
    let mut lines = Vec::new();
    for n in 0..4 {
        lines.push(request("enumerate", &tiny_block(n), "\"budget\":5000"));
    }
    for n in 0..2 {
        lines.push(request("group", &tiny_block(n), "\"budget\":5000"));
        lines.push(request(
            "select",
            &tiny_block(n),
            "\"budget\":5000,\"max-instr\":2",
        ));
    }
    // Duplicates: the same cold keys again (warm for whoever comes second).
    for n in 0..4 {
        lines.push(request("enumerate", &tiny_block(n), "\"budget\":5000"));
    }
    lines.push("definitely not json".to_string());
    lines.push("{\"op\":\"frobnicate\"}".to_string());
    lines.push("{\"op\":\"enumerate\"}".to_string());
    lines
}

/// A deterministic per-thread shuffle (no RNG dependency): a simple LCG drives
/// Fisher-Yates, seeded by the thread index so every thread replays a different
/// interleaving on every run of the test, reproducibly.
fn shuffled(lines: &[String], seed: u64) -> Vec<String> {
    let mut order: Vec<String> = lines.to_vec();
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// 8 threads × shuffled mixed workload over one shared state: every stripped
/// response must equal the serial replay's, and the final server counters must
/// classify every request exactly once.
#[test]
fn concurrent_mixed_workload_matches_serial_replay() {
    let workload = mixed_workload();

    // Serial ground truth on a private state: request line -> stripped response.
    let serial_state = ServerState::new(64, None);
    let mut expected: HashMap<&str, String> = HashMap::new();
    for line in &workload {
        let response = serial_state.handle_line(line);
        let strip = stripped(&response);
        if let Some(previous) = expected.insert(line, strip.clone()) {
            assert_eq!(previous, strip, "serial replay must itself be stable");
        }
    }

    const CLIENTS: usize = 8;
    let state = Arc::new(ServerState::new(64, None));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let state = Arc::clone(&state);
        let barrier = Arc::clone(&barrier);
        let lines = shuffled(&workload, client as u64 + 1);
        handles.push(thread::spawn(move || {
            barrier.wait();
            lines
                .into_iter()
                .map(|line| {
                    let response = state.handle_line(&line);
                    (line, stripped(&response))
                })
                .collect::<Vec<(String, String)>>()
        }));
    }
    let mut answered = 0u64;
    for handle in handles {
        for (line, strip) in handle.join().expect("client thread panicked") {
            answered += 1;
            assert_eq!(
                expected[line.as_str()],
                strip,
                "concurrent response diverged from the serial replay for {line}"
            );
        }
    }
    assert_eq!(answered, (CLIENTS * workload.len()) as u64);

    let stats = state.handle_line("{\"op\":\"stats\"}");
    let counter = |field: &str| server_counter(&stats, field);
    assert_eq!(
        counter("requests"),
        answered,
        "every protocol line is counted once: {stats}"
    );
    assert_eq!(
        counter("hits") + counter("misses") + counter("errors"),
        counter("requests"),
        "every request is exactly one of hit/miss/error: {stats}"
    );
    // 3 malformed lines per client, never more or fewer.
    assert_eq!(counter("errors"), (CLIENTS * 3) as u64, "{stats}");
    // Each distinct evaluated key computes at most once per *cache lifetime*;
    // with a 64-entry cache nothing evicts, so across 8 clients the 8 distinct
    // keys compute exactly 8 times total and everything else is a hit.
    assert_eq!(
        counter("misses"),
        8,
        "one computation per distinct key: {stats}"
    );
    // Every computation was led by a flight; a flight may additionally have
    // been led by a racer that found the payload published while it joined
    // (counted as a hit, not a miss), so the ledger is an inequality.
    assert!(
        counter("flights_led") >= counter("misses"),
        "every computation runs under a flight: {stats}"
    );
    assert!(
        counter("hits") >= counter("coalesced"),
        "every coalesced answer is a hit: {stats}"
    );

    // Observability ledgers, under full concurrency. Every span that was entered
    // was exited (no leaked tokens on any path, error dispatches included), the
    // registry's request counter agrees with the `server` object it feeds, and
    // every task the pool handed out was popped from its owner's deque or stolen
    // — never both, never neither.
    let registry = state.registry();
    assert_eq!(
        registry.spans_entered(),
        registry.spans_exited(),
        "span enter/exit ledger must balance"
    );
    assert_eq!(
        registry.counter_value("ise_serve_requests_total"),
        counter("requests"),
        "the stats op and the metrics registry share one requests counter"
    );
    assert_eq!(
        registry.counter_value("ise_pool_own_pops_total")
            + registry.counter_value("ise_pool_steals_total"),
        registry.counter_value("ise_pool_done_total"),
        "own pops + steals must account for every executed pool item"
    );
}

/// The single-flight guarantee, pinned with the compute-delay seam: four
/// barrier-synchronized clients issue the identical cold request; the delay
/// holds the leader's computation open so every other client must coalesce.
/// Exactly one computation runs (server `misses`, flight `leaders` and the
/// enumeration cache all agree) and all four payloads are byte-identical.
#[test]
fn single_flight_coalesces_identical_cold_requests() {
    const CLIENTS: usize = 4;
    let state = Arc::new(ServerState::new(8, None).with_compute_delay(Duration::from_millis(500)));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let line = request("enumerate", &tiny_block(0), "\"budget\":5000");
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let state = Arc::clone(&state);
        let barrier = Arc::clone(&barrier);
        let line = line.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            state.handle_line(&line)
        }));
    }
    let responses: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    let first = stripped(&responses[0]);
    for response in &responses {
        assert!(response.starts_with("{\"ok\":true"), "{response}");
        assert_eq!(
            first,
            stripped(response),
            "coalesced payloads must be byte-identical"
        );
    }
    let cold: Vec<&String> = responses
        .iter()
        .filter(|r| r.contains("\"cached\":false"))
        .collect();
    assert_eq!(cold.len(), 1, "exactly one client computed: {responses:?}");

    let stats = state.handle_line("{\"op\":\"stats\"}");
    let counter = |field: &str| server_counter(&stats, field);
    assert_eq!(counter("misses"), 1, "one computation: {stats}");
    assert_eq!(counter("hits"), (CLIENTS - 1) as u64, "{stats}");
    assert_eq!(counter("coalesced"), (CLIENTS - 1) as u64, "{stats}");
    assert_eq!(counter("flights_led"), 1, "{stats}");
    assert_eq!(
        state.enumeration_stats().misses,
        1,
        "run_batch ran for exactly one block"
    );
    assert_eq!(state.flight_stats().leaders, 1);
    assert_eq!(state.flight_stats().coalesced, (CLIENTS - 1) as u64);
}

/// A failing flight must not poison its followers permanently: concurrent
/// identical *invalid* requests all receive the leader's error in-band, and the
/// daemon keeps serving afterwards.
#[test]
fn failed_flights_propagate_errors_and_do_not_poison() {
    let state = Arc::new(ServerState::new(8, None).with_compute_delay(Duration::from_millis(200)));
    // Valid syntax (passes key derivation) but an unloadable corpus path: the
    // failure happens inside the coalesced computation.
    let line = "{\"op\":\"enumerate\",\"block\":\"/nonexistent/ise-serve-flight\"}".to_string();
    // Path resolution fails before the compute delay, so exercise plain
    // concurrent errors rather than flight mechanics; both clients must see
    // `ok:false` and the daemon must still answer valid requests.
    let mut handles = Vec::new();
    for _ in 0..2 {
        let state = Arc::clone(&state);
        let line = line.clone();
        handles.push(thread::spawn(move || state.handle_line(&line)));
    }
    for handle in handles {
        let response = handle.join().expect("client thread panicked");
        assert!(response.starts_with("{\"ok\":false"), "{response}");
    }
    let ok = state.handle_line(&request("enumerate", &tiny_block(1), "\"budget\":5000"));
    assert!(ok.starts_with("{\"ok\":true"), "daemon still serves: {ok}");
    let stats = state.handle_line("{\"op\":\"stats\"}");
    assert_eq!(
        server_counter(&stats, "hits")
            + server_counter(&stats, "misses")
            + server_counter(&stats, "errors"),
        server_counter(&stats, "requests"),
        "{stats}"
    );
}
