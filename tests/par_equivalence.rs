//! Task-parallel enumeration equivalence: `par(tasks=k, threads=t)` must reproduce
//! the serial `run_on_graph` result — the cut list *and* the statistics — across all
//! four `ise-workloads` families, every §5.3 pruning combination, and several
//! (tasks, threads) configurations. This is the end-to-end form of the DESIGN.md §1.4
//! argument that first-output subtrees are independent and the merge replays the
//! serial de-duplication order.

use ise_repro::ise_enum::par::{parallel_cuts, ParConfig};
use ise_repro::ise_enum::{
    incremental_cuts_opts, Constraints, Cut, CutKey, DedupMode, EngineOptions, EnumContext,
    Enumeration, PruningConfig,
};
use ise_repro::ise_graph::Dfg;
use ise_repro::ise_workloads::compile_block;
use ise_repro::ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_repro::ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_repro::ise_workloads::tree::{TreeDfgBuilder, TreeOrientation};

/// One small graph per workload family (kept tiny: the full test sweeps 64 pruning
/// masks × several parallel configurations per graph).
fn family_graphs() -> Vec<Dfg> {
    vec![
        TreeDfgBuilder::new(3).build(),
        TreeDfgBuilder::new(3)
            .with_orientation(TreeOrientation::FanIn)
            .build(),
        random_dag(
            &RandomDagConfig::new(14)
                .with_live_ins(3)
                .with_memory_ratio(0.2),
            23,
        ),
        generate_block(&MiBenchLikeConfig::new(20), 5).expect("generator output is valid"),
        compile_block("expr", "x = (a + b) * (c + b); y = (a + b) - c; z = x ^ y;")
            .expect("expression compiles"),
    ]
}

fn pruning_from_mask(mask: u8) -> PruningConfig {
    PruningConfig {
        output_output: mask & 0x01 != 0,
        connectedness: mask & 0x02 != 0,
        build_s: mask & 0x04 != 0,
        output_input: mask & 0x08 != 0,
        input_input: mask & 0x10 != 0,
        dominator_input: mask & 0x20 != 0,
    }
}

fn keys(result: &Enumeration) -> Vec<CutKey<'_>> {
    result.cuts.iter().map(Cut::key).collect()
}

/// The headline property: parallel ≡ serial, exactly, per family × pruning mask ×
/// (tasks, threads) — statistics included, so even the duplicate accounting of the
/// merge must replay the serial discovery order.
#[test]
fn parallel_equals_serial_across_families_and_prunings() {
    for dfg in family_graphs() {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        for mask in 0u8..64 {
            let pruning = pruning_from_mask(mask);
            let serial =
                incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
            for (tasks, threads) in [(2, 2), (5, 3)] {
                let par = parallel_cuts(
                    &ctx,
                    &constraints,
                    &pruning,
                    &ParConfig::new(tasks, threads),
                );
                assert_eq!(
                    par.stats, serial.stats,
                    "`{name}` mask {mask:#08b} tasks={tasks} threads={threads}: stats"
                );
                assert_eq!(
                    keys(&par),
                    keys(&serial),
                    "`{name}` mask {mask:#08b} tasks={tasks} threads={threads}: cuts"
                );
            }
        }
    }
}

/// The same equivalence holds under the validate-first memory fallback and under
/// connected-only constraints.
#[test]
fn parallel_equals_serial_under_dedup_modes_and_connectedness() {
    for dfg in family_graphs() {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        for constraints in [
            Constraints::new(4, 2).unwrap(),
            Constraints::new(2, 2).unwrap().connected_only(true),
        ] {
            for dedup_mode in [DedupMode::DedupFirst, DedupMode::ValidateFirst] {
                let options = EngineOptions {
                    dedup_mode,
                    ..EngineOptions::default()
                };
                let pruning = PruningConfig::all();
                let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &options);
                let mut config = ParConfig::new(4, 2);
                config.options = options;
                let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
                assert_eq!(
                    par.stats,
                    serial.stats,
                    "`{name}` {dedup_mode:?} connected={}",
                    constraints.is_connected_only()
                );
                assert_eq!(keys(&par), keys(&serial), "`{name}` {dedup_mode:?}");
            }
        }
    }
}

/// Oversplitting beyond the candidate count must degrade gracefully (empty tasks)
/// and still reproduce the serial result.
#[test]
fn more_tasks_than_candidates_is_harmless() {
    let dfg = random_dag(&RandomDagConfig::new(10).with_live_ins(2), 7);
    let ctx = EnumContext::new(dfg);
    let constraints = Constraints::new(3, 2).unwrap();
    let pruning = PruningConfig::all();
    let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
    let par = parallel_cuts(&ctx, &constraints, &pruning, &ParConfig::new(1000, 8));
    assert_eq!(par.stats, serial.stats);
    assert_eq!(keys(&par), keys(&serial));
}
