//! Task-parallel enumeration equivalence: `par(tasks=k, threads=t)` must reproduce
//! the serial `run_on_graph` result — the cut list *and* the statistics — across all
//! four `ise-workloads` families, every §5.3 pruning combination, and several
//! (tasks, threads) configurations. This is the end-to-end form of the DESIGN.md §1.4
//! argument that first-output subtrees are independent and the merge replays the
//! serial de-duplication order.

use ise_repro::ise_enum::par::{parallel_cuts, parallel_cuts_traced, ParConfig};
use ise_repro::ise_enum::{
    incremental_cuts_opts, Constraints, Cut, CutKey, DedupMode, EngineOptions, EnumContext,
    Enumeration, PruningConfig, TaskLoadSummary,
};
use ise_repro::ise_graph::Dfg;
use ise_repro::ise_workloads::compile_block;
use ise_repro::ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_repro::ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_repro::ise_workloads::skewed_dag::{skewed_dag, SkewedDagConfig};
use ise_repro::ise_workloads::tree::{TreeDfgBuilder, TreeOrientation};

/// One small graph per workload family (kept tiny: the full test sweeps 64 pruning
/// masks × several parallel configurations per graph).
fn family_graphs() -> Vec<Dfg> {
    vec![
        TreeDfgBuilder::new(3).build(),
        TreeDfgBuilder::new(3)
            .with_orientation(TreeOrientation::FanIn)
            .build(),
        random_dag(
            &RandomDagConfig::new(14)
                .with_live_ins(3)
                .with_memory_ratio(0.2),
            23,
        ),
        generate_block(&MiBenchLikeConfig::new(20), 5).expect("generator output is valid"),
        compile_block("expr", "x = (a + b) * (c + b); y = (a + b) - c; z = x ^ y;")
            .expect("expression compiles"),
    ]
}

fn pruning_from_mask(mask: u8) -> PruningConfig {
    PruningConfig {
        output_output: mask & 0x01 != 0,
        connectedness: mask & 0x02 != 0,
        build_s: mask & 0x04 != 0,
        output_input: mask & 0x08 != 0,
        input_input: mask & 0x10 != 0,
        dominator_input: mask & 0x20 != 0,
    }
}

fn keys(result: &Enumeration) -> Vec<CutKey<'_>> {
    result.cuts.iter().map(Cut::key).collect()
}

/// The headline property: parallel ≡ serial, exactly, per family × pruning mask ×
/// (tasks, threads) — statistics included, so even the duplicate accounting of the
/// merge must replay the serial discovery order.
#[test]
fn parallel_equals_serial_across_families_and_prunings() {
    for dfg in family_graphs() {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        for mask in 0u8..64 {
            let pruning = pruning_from_mask(mask);
            let serial =
                incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
            for (tasks, threads) in [(2, 2), (5, 3)] {
                let par = parallel_cuts(
                    &ctx,
                    &constraints,
                    &pruning,
                    &ParConfig::new(tasks, threads),
                );
                assert_eq!(
                    par.stats, serial.stats,
                    "`{name}` mask {mask:#08b} tasks={tasks} threads={threads}: stats"
                );
                assert_eq!(
                    keys(&par),
                    keys(&serial),
                    "`{name}` mask {mask:#08b} tasks={tasks} threads={threads}: cuts"
                );
            }
        }
    }
}

/// The same equivalence holds under the validate-first memory fallback and under
/// connected-only constraints.
#[test]
fn parallel_equals_serial_under_dedup_modes_and_connectedness() {
    for dfg in family_graphs() {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        for constraints in [
            Constraints::new(4, 2).unwrap(),
            Constraints::new(2, 2).unwrap().connected_only(true),
        ] {
            for dedup_mode in [DedupMode::DedupFirst, DedupMode::ValidateFirst] {
                let options = EngineOptions {
                    dedup_mode,
                    ..EngineOptions::default()
                };
                let pruning = PruningConfig::all();
                let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &options);
                let mut config = ParConfig::new(4, 2);
                config.options = options;
                let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
                assert_eq!(
                    par.stats,
                    serial.stats,
                    "`{name}` {dedup_mode:?} connected={}",
                    constraints.is_connected_only()
                );
                assert_eq!(keys(&par), keys(&serial), "`{name}` {dedup_mode:?}");
            }
        }
    }
}

/// Oversplitting beyond the candidate count must degrade gracefully (empty tasks)
/// and still reproduce the serial result.
#[test]
fn more_tasks_than_candidates_is_harmless() {
    let dfg = random_dag(&RandomDagConfig::new(10).with_live_ins(2), 7);
    let ctx = EnumContext::new(dfg);
    let constraints = Constraints::new(3, 2).unwrap();
    let pruning = PruningConfig::all();
    let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
    let par = parallel_cuts(&ctx, &constraints, &pruning, &ParConfig::new(1000, 8));
    assert_eq!(par.stats, serial.stats);
    assert_eq!(keys(&par), keys(&serial));
}

/// Recursive task splitting: parallel ≡ serial — statistics included — for every
/// (split-threshold, tasks, threads) combination, per family. The low thresholds
/// force deep recursive splits (threshold 1 suspends at every decision level), so
/// this pins the resume counter-bookkeeping, the child-id ordering and the sharded
/// merge at once.
#[test]
fn recursive_splitting_equals_serial_across_the_grid() {
    for dfg in family_graphs() {
        let name = dfg.name().to_string();
        let ctx = EnumContext::new(dfg);
        let constraints = Constraints::new(3, 2).unwrap();
        let pruning = PruningConfig::all();
        let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());
        for split_threshold in [1usize, 3, 20, 1_000_000] {
            for tasks in [1usize, 2, 5] {
                for threads in [1usize, 3] {
                    let mut config = ParConfig::new(tasks, threads);
                    config.split_threshold = Some(split_threshold);
                    let par = parallel_cuts(&ctx, &constraints, &pruning, &config);
                    assert_eq!(
                        par.stats, serial.stats,
                        "`{name}` split={split_threshold} tasks={tasks} threads={threads}: stats"
                    );
                    assert_eq!(
                        keys(&par),
                        keys(&serial),
                        "`{name}` split={split_threshold} tasks={tasks} threads={threads}: cuts"
                    );
                }
            }
        }
    }
}

/// The skewed-DAG workload exists to make count-balanced fan-out pathological: a
/// forced low threshold must actually split (more final tasks than initial ones),
/// collapse the task-load skew, and still reproduce the serial bytes exactly.
#[test]
fn forced_splitting_on_the_skewed_block_splits_and_stays_exact() {
    let dfg = skewed_dag(&SkewedDagConfig::new(24, 24), 42);
    let ctx = EnumContext::new(dfg);
    let constraints = Constraints::new(4, 2).unwrap();
    let pruning = PruningConfig::all();
    let serial = incremental_cuts_opts(&ctx, &constraints, &pruning, &EngineOptions::default());

    let static_run = parallel_cuts_traced(&ctx, &constraints, &pruning, &ParConfig::new(8, 2));
    let static_skew = TaskLoadSummary::from_task_nodes(&static_run.task_nodes).skew_ratio();
    assert!(
        static_skew > 2.0,
        "the workload must skew a count-balanced fan-out, got {static_skew:.2}"
    );

    let mut config = ParConfig::new(8, 2);
    config.split_threshold = Some(10_000);
    let split_run = parallel_cuts_traced(&ctx, &constraints, &pruning, &config);
    assert!(
        split_run.task_nodes.len() > static_run.task_nodes.len(),
        "a 10k-node threshold must split the heavy ranges"
    );
    let split_skew = TaskLoadSummary::from_task_nodes(&split_run.task_nodes).skew_ratio();
    assert!(
        split_skew < static_skew,
        "splitting must reduce the skew ({static_skew:.2} -> {split_skew:.2})"
    );
    // The real prize is the wall-clock floor: the heaviest task must shrink by far
    // more than the split-off overhead costs.
    let static_max = static_run.task_nodes.iter().max().copied().unwrap_or(0);
    let split_max = split_run.task_nodes.iter().max().copied().unwrap_or(0);
    assert!(
        split_max * 4 < static_max,
        "splitting must collapse the heaviest task ({static_max} -> {split_max})"
    );
    assert_eq!(split_run.enumeration.stats, serial.stats);
    assert_eq!(keys(&split_run.enumeration), keys(&serial));
}
