//! End-to-end checks of the corpus + batch subsystem against the committed
//! `corpus/` directory: the files validate and round-trip, and the batch CLI
//! reports exactly what direct engine runs report, for any thread count.

use ise_repro::ise_cli::batch::{run_batch, BatchConfig};
use ise_repro::ise_corpus::{dfg_eq, load_corpus_path, parse_corpus, write_block, CorpusBlock};
use ise_repro::ise_enum::{run_on_graph, Constraints, PruningConfig};

fn committed_corpus() -> Vec<CorpusBlock> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    load_corpus_path(dir).expect("the committed corpus/ directory validates")
}

#[test]
fn committed_corpus_loads_and_round_trips() {
    let blocks = committed_corpus();
    assert!(
        blocks.len() >= 20,
        "the committed corpus holds ~20 diverse blocks, found {}",
        blocks.len()
    );
    for block in &blocks {
        let reparsed = parse_corpus(&write_block(block))
            .unwrap_or_else(|e| panic!("{} does not re-parse: {e}", block.dfg.name()));
        assert!(
            dfg_eq(&block.dfg, &reparsed[0].dfg),
            "{} does not round-trip",
            block.dfg.name()
        );
    }
}

#[test]
fn batch_cli_counts_equal_direct_engine_runs_for_any_thread_count() {
    // The small committed blocks, exhaustively enumerated (no budget): direct
    // cross-check stays fast while exercising three workload families.
    let blocks: Vec<CorpusBlock> = committed_corpus()
        .into_iter()
        .filter(|b| b.dfg.len() <= 50)
        .collect();
    assert!(blocks.len() >= 5, "expected several small committed blocks");

    let constraints = Constraints::new(4, 2).unwrap();
    let pruning = PruningConfig::all();
    let config = |threads| BatchConfig {
        threads,
        ..BatchConfig::new(constraints.clone())
    };

    let single = run_batch(&blocks, &config(1));
    for (outcome, block) in single.iter().zip(&blocks) {
        let direct = run_on_graph(&block.dfg, &constraints, &pruning, None);
        assert_eq!(
            outcome.enumeration.cuts.len(),
            direct.cuts.len(),
            "batch vs direct cut count on {}",
            outcome.name
        );
        assert_eq!(
            outcome.enumeration.stats.search_nodes, direct.stats.search_nodes,
            "batch vs direct search trace on {}",
            outcome.name
        );
    }

    let eight = run_batch(&blocks, &config(8));
    let counts = |outcomes: &[ise_repro::ise_cli::batch::BlockOutcome]| -> Vec<(String, usize)> {
        outcomes
            .iter()
            .map(|o| (o.name.clone(), o.enumeration.cuts.len()))
            .collect()
    };
    assert_eq!(counts(&single), counts(&eight));
    let aggregate = |outcomes: &[ise_repro::ise_cli::batch::BlockOutcome]| -> usize {
        outcomes.iter().map(|o| o.enumeration.cuts.len()).sum()
    };
    assert_eq!(aggregate(&single), aggregate(&eight));
}

/// PR 4 extension of the invariance above, down to task-level sharding: with
/// intra-block fan-out forced on every (small) committed block, any thread count and
/// the serial whole-block runs must all report identical outcomes — statistics
/// included, since the task merge replays the serial discovery order exactly.
#[test]
fn task_level_sharding_is_invariant_on_the_committed_corpus() {
    let blocks: Vec<CorpusBlock> = committed_corpus()
        .into_iter()
        .filter(|b| b.dfg.len() <= 50)
        .collect();
    assert!(blocks.len() >= 5, "expected several small committed blocks");

    let constraints = Constraints::new(4, 2).unwrap();
    let config = |threads: usize, par_threshold: usize| {
        let mut cfg = BatchConfig::new(constraints.clone());
        cfg.threads = threads;
        cfg.par_threshold = par_threshold;
        cfg
    };

    // Whole blocks on one thread is the serial reference.
    let serial = run_batch(&blocks, &config(1, usize::MAX));
    for threads in [1, 8] {
        let fanned = run_batch(&blocks, &config(threads, 1));
        assert_eq!(serial.len(), fanned.len());
        let mut total = 0usize;
        for (a, b) in serial.iter().zip(&fanned) {
            assert_eq!(a.name, b.name);
            assert!(b.tasks > 1, "{} did not fan out", b.name);
            assert_eq!(
                a.enumeration.stats, b.enumeration.stats,
                "task sharding changed the stats of {} at {threads} threads",
                a.name
            );
            let ak: Vec<_> = a.enumeration.cuts.iter().map(|c| c.key()).collect();
            let bk: Vec<_> = b.enumeration.cuts.iter().map(|c| c.key()).collect();
            assert_eq!(ak, bk, "task sharding changed the cuts of {}", a.name);
            total += b.enumeration.cuts.len();
        }
        assert!(total > 0, "the small committed blocks have cuts");
    }
}
