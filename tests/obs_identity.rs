//! The observability non-interference invariant, end to end: turning recording on
//! (`--trace-out`, `--progress`, memo/pool instrumentation and all) must not change
//! a single byte of the `--out` JSON — across thread counts, memoization modes and
//! forced task splits on the committed `corpus/`. This is the test-pinned form of
//! the DESIGN.md §8 contract that `ise-obs` only *observes*: the engine, pool,
//! memo and reporting layers may count and time themselves, but never steer.
//!
//! Wall-clock (`*_seconds`) fields are volatile between any two runs and are
//! stripped before comparing a pair; nothing else is. Cross-thread-count
//! comparisons additionally strip the configuration echo (`threads`,
//! `par_threshold`, `split_threshold`), mirroring `ci/strip-volatile.sh`.

use std::fs;
use std::path::PathBuf;
use std::process;
use std::sync::atomic::{AtomicUsize, Ordering};

use ise_bench::json::Json;
use ise_repro::ise_cli;

/// A unique scratch file path under the system temp dir (no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ise-obs-identity-{}-{n}-{tag}", process::id()))
}

/// Runs one `ise` invocation against the committed corpus and returns the bytes
/// it wrote to `--out`.
fn run_to_json(subcommand: &str, extra: &[&str]) -> String {
    let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let out = scratch("out.json");
    let mut args: Vec<String> = [
        subcommand,
        "--corpus",
        corpus,
        "--limit",
        "2",
        "--budget",
        "20000",
        "--out",
        out.to_str().expect("temp path is valid UTF-8"),
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    args.extend(extra.iter().map(|s| (*s).to_string()));
    ise_cli::run(&args).unwrap_or_else(|e| panic!("`ise {subcommand}` failed: {e}"));
    let json = fs::read_to_string(&out).expect("--out file was written");
    let _ = fs::remove_file(&out);
    json
}

/// Removes every `"key":value` pair whose key satisfies `volatile` (plus the
/// separating comma), leaving all other bytes untouched. Values may be numbers,
/// strings, or flat objects/arrays — enough for the report schema.
fn strip_fields(json: &str, volatile: &dyn Fn(&str) -> bool) -> String {
    let bytes = json.as_bytes();
    let mut out = String::with_capacity(json.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(end) = json[i + 1..].find('"').map(|o| i + 1 + o) {
                let key = &json[i + 1..end];
                if bytes.get(end + 1) == Some(&b':') && volatile(key) {
                    let mut j = end + 2;
                    let mut depth = 0usize;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'{' | b'[' => depth += 1,
                            b'}' | b']' if depth == 0 => break,
                            b'}' | b']' => depth -= 1,
                            b'"' => {
                                j += 1;
                                while j < bytes.len() && bytes[j] != b'"' {
                                    j += 1;
                                }
                            }
                            b',' if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b',' {
                        j += 1; // interior field: its own separator goes with it
                    } else if out.ends_with(',') {
                        out.pop(); // final field: the preceding separator goes
                    }
                    i = j;
                    continue;
                }
                out.push_str(&json[i..=end]);
                i = end + 1;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

fn strip_timing(json: &str) -> String {
    strip_fields(json, &|key| key.ends_with("_seconds"))
}

fn strip_config_echo(json: &str) -> String {
    strip_fields(json, &|key| {
        key.ends_with("_seconds")
            || matches!(
                key,
                "threads" | "par_threshold" | "split_threshold" | "tasks"
            )
    })
}

/// Asserts the trace file a recording run produced is loadable Chrome
/// trace-event JSON with at least one event, then removes it.
fn check_trace(path: &PathBuf) {
    let trace = fs::read_to_string(path).expect("--trace-out file was written");
    assert!(
        trace.starts_with("{\"traceEvents\":["),
        "trace must use the chrome trace-event envelope: {}",
        &trace[..trace.len().min(60)]
    );
    let doc = Json::parse(&trace).expect("trace is well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(
        !events.is_empty(),
        "a recorded run emits at least one event"
    );
    let _ = fs::remove_file(path);
}

/// `ise enumerate`: recording on vs off over the (threads × split-threshold)
/// grid, plus cross-thread-count invariance with recording ON everywhere.
#[test]
fn enumerate_json_is_byte_identical_with_recording_on() {
    let mut across: Vec<String> = Vec::new();
    for threads in ["1", "2"] {
        for split in [None, Some("1000")] {
            let mut config = vec!["--threads", threads, "--par-threshold", "1"];
            if let Some(split) = split {
                config.extend(["--split-threshold", split]);
            }
            let off = run_to_json("enumerate", &config);

            let trace = scratch("enumerate-trace.json");
            let mut on_args = config.clone();
            let trace_str = trace.to_str().expect("temp path is valid UTF-8");
            on_args.extend(["--trace-out", trace_str, "--progress"]);
            let on = run_to_json("enumerate", &on_args);
            check_trace(&trace);

            assert_eq!(
                strip_timing(&off),
                strip_timing(&on),
                "recording changed enumerate --out bytes (threads={threads} split={split:?})"
            );
            across.push(strip_config_echo(&on));
        }
    }
    for stripped in &across[1..] {
        assert_eq!(
            &across[0], stripped,
            "enumerate results must not depend on threads/split with recording on"
        );
    }
}

/// `ise group`: the memo dimension — with and without `--no-memo`, recording on
/// vs off must agree byte-for-byte, and memoization itself must not change the
/// recorded run's payload.
#[test]
fn group_json_is_byte_identical_with_recording_on_and_memo_off() {
    let mut payloads: Vec<String> = Vec::new();
    for memo in [&[][..], &["--no-memo"][..]] {
        let mut config = vec!["--threads", "2", "--par-threshold", "1"];
        config.extend_from_slice(memo);
        let off = run_to_json("group", &config);

        let trace = scratch("group-trace.json");
        let mut on_args = config.clone();
        let trace_str = trace.to_str().expect("temp path is valid UTF-8");
        on_args.extend(["--trace-out", trace_str]);
        let on = run_to_json("group", &on_args);
        check_trace(&trace);

        assert_eq!(
            strip_timing(&off),
            strip_timing(&on),
            "recording changed group --out bytes (memo={})",
            memo.is_empty()
        );
        payloads.push(strip_timing(&on));
    }
    assert_eq!(
        payloads[0], payloads[1],
        "memoization must be a pure cache: --no-memo may not change group output"
    );
}

/// `ise select --global`: the early-return global-selection path must still
/// write the trace and produce identical bytes with recording on.
#[test]
fn select_global_json_is_byte_identical_with_recording_on() {
    let config = vec!["--threads", "2", "--par-threshold", "1", "--global"];
    let off = run_to_json("select", &config);

    let trace = scratch("select-trace.json");
    let mut on_args = config.clone();
    let trace_str = trace.to_str().expect("temp path is valid UTF-8");
    on_args.extend(["--trace-out", trace_str]);
    let on = run_to_json("select", &on_args);
    check_trace(&trace);

    assert_eq!(
        strip_timing(&off),
        strip_timing(&on),
        "recording changed select --global --out bytes"
    );
}
