#!/usr/bin/env bash
# Strip the volatile fields from ise JSON outputs so byte-identity checks compare
# only deterministic content. Every CI smoke step funnels its outputs through this
# one filter; keep the list in sync with DESIGN.md §7 ("volatile envelope facts").
#
# Stripped fields:
#   *_seconds        wall-clock timings (enumerate/group/select metadata)
#   threads          worker pool size — outputs are thread-count invariant
#   par_threshold    fan-out plan knob — changes scheduling, never results
#   split_threshold  recursive-split knob — changes the task decomposition,
#                    never unbudgeted results (null when splitting is off)
#   tasks            task decomposition size — ditto
#   cached           serve envelope: hit/miss flag, differs cold vs warm by design
#   elapsed_ms       serve envelope: wall-clock latency
#   elapsed_us       serve envelope: the same latency in microseconds
#   obs              stats payload: the metrics-registry snapshot (counters and
#                    timings move with load; the flat object is stripped whole)
#
# Usage: ci/strip-volatile.sh [FILE...]   (reads stdin when no file is given)
set -eu
sed -e 's/"[a-z_]*_seconds":[0-9.e-]*//g' \
    -e 's/"threads":[0-9]*//g' \
    -e 's/"par_threshold":[0-9]*//g' \
    -e 's/"split_threshold":\(null\|[0-9]*\)//g' \
    -e 's/"tasks":[0-9]*//g' \
    -e 's/"cached":[a-z]*//g' \
    -e 's/"elapsed_ms":[0-9.e-]*//g' \
    -e 's/"elapsed_us":[0-9.e-]*//g' \
    -e 's/"obs":{[^}]*}//g' \
    "$@"
