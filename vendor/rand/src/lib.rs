//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing exactly the API surface this workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna) seeded through
//! SplitMix64, so streams are deterministic in the seed and of high statistical
//! quality — which is all the synthetic-workload generators need. The container
//! building this workspace has no network access, hence the vendored stub; swapping
//! back to the real crate is a one-line change in the workspace manifest.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let roll: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&roll));
//! assert!(rng.gen_range(10usize..20) >= 10);
//! ```

/// A source of 64-bit random words; everything else is derived from it.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges sampleable via [`Rng::gen_range`]; generic over the element type so that
/// integer literals in range expressions infer from the expected result type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by widening multiplication (Lemire's method,
/// without the rejection step — the bias is < 2^-32 for the spans used here).
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through SplitMix64.
    ///
    /// Deterministic in the seed, `Clone`-able, and fast; not cryptographically
    /// secure (neither is the real `StdRng` guaranteed to keep its stream stable —
    /// workloads must only rely on determinism *within* a lockfile, which holds
    /// trivially for this vendored implementation).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "P(0.25) hit {hits}/10000");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(4usize..4);
    }
}
