//! Minimal, dependency-free stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, exposing exactly the API surface this workspace's test
//! suite uses:
//!
//! * the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map) and
//!   [`prop_flat_map`](strategy::Strategy::prop_flat_map), implemented for integer
//!   ranges, tuples and [`Just`](strategy::Just);
//! * [`collection::vec`] and [`arbitrary::any`];
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]` header, and
//!   the [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case is reported with
//! the seed of its run so it can be replayed (`PROPTEST_SEED=<seed> cargo test`).
//! Case generation is deterministic by default (seeded from a fixed constant and the
//! case index) so CI results are reproducible; set `PROPTEST_SEED` to explore a
//! different region of the input space.

pub mod strategy;

pub mod test_runner {
    //! Test-case execution: configuration, error type, and the runner that drives
    //! the [`proptest!`](crate::proptest) macro.

    use std::fmt;

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The result type every property body is wrapped into.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only the case count is configurable.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives one property: owns the RNG that strategies draw values from.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: rand::rngs::StdRng,
        base_seed: u64,
    }

    /// Fixed default seed (`PROPTEST_SEED` overrides it): deterministic CI, and any
    /// failure report names the exact seed to replay.
    const DEFAULT_SEED: u64 = 0x15E_CA5E;

    impl TestRunner {
        /// Creates a runner for `config`, honouring the `PROPTEST_SEED` env var.
        pub fn new(config: ProptestConfig) -> Self {
            use rand::SeedableRng;
            let base_seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_SEED);
            TestRunner {
                config,
                rng: rand::rngs::StdRng::seed_from_u64(base_seed),
                base_seed,
            }
        }

        /// The RNG strategies sample from.
        pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
            &mut self.rng
        }

        /// Runs `body` for the configured number of cases, panicking (like a failed
        /// `assert!`) on the first case whose body returns an error.
        ///
        /// # Panics
        ///
        /// Panics when a case fails, reporting the case index and the base seed.
        pub fn run_cases(&mut self, mut body: impl FnMut(&mut TestRunner) -> TestCaseResult) {
            use rand::SeedableRng;
            for case in 0..self.config.cases {
                // Each case reseeds deterministically so a failure can be replayed
                // without regenerating its predecessors.
                self.rng = rand::rngs::StdRng::seed_from_u64(
                    self.base_seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                if let Err(error) = body(self) {
                    panic!(
                        "proptest: case {case}/{} failed (base seed {:#x}): {error}",
                        self.config.cases, self.base_seed,
                    );
                }
            }
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point: strategies derived from a type alone.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            use rand::Rng;
            runner.rng().gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    use rand::Rng;
                    runner.rng().gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T`: any value whatsoever.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections; only `Vec` is needed here.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// A length specification for [`vec()`](fn@vec): an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty proptest size range");
            SizeRange {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from an inner strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            use rand::Rng;
            let len = runner.rng().gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current case unless `cond` holds (optionally with a formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right,
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Declares property tests: each `fn name(pattern in strategy, ..) { body }` item
/// becomes a `#[test]` that checks the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_cases(|runner| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), runner);)+
                    (move || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn runner() -> TestRunner {
        TestRunner::new(ProptestConfig::with_cases(16))
    }

    #[test]
    fn ranges_tuples_and_just_compose() {
        let mut r = runner();
        let strategy =
            (3usize..7).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, n)));
        for _ in 0..100 {
            let (n, items) = strategy.new_value(&mut r);
            assert!((3..7).contains(&n));
            assert_eq!(items.len(), n);
            assert!(items.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut r = runner();
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.new_value(&mut r);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn any_bool_produces_both_values() {
        let mut r = runner();
        let strategy = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[usize::from(strategy.new_value(&mut r))] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_passing_tests(x in 0usize..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(x, x, "x must equal itself (flip = {})", flip);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failing_property_panics_with_case_info() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run_cases(|r| {
            let value = Strategy::new_value(&(0usize..10), r);
            prop_assert!(value >= 10, "value {} is small", value);
            Ok(())
        });
    }
}
