//! The [`Strategy`] trait and its combinators: ranges, tuples, [`Just`], `prop_map`
//! and `prop_flat_map`. Values are generated directly from the runner's RNG; there
//! is no shrink tree (see the crate docs).

use crate::test_runner::TestRunner;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value from the runner's RNG.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// A strategy generating `f(value)` for every `value` this strategy generates.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// A strategy that feeds each generated value to `f` and then draws from the
    /// strategy `f` returns — the way to make one dimension depend on another.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategies behind references are still strategies.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.source.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.source.new_value(runner)).new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
